//! Fig 5b: as Fig 5a, but against Longhop (paper: 512 ToRs with 10
//! network and 8 server ports — a folded 9-cube) and a same-equipment
//! Jellyfish. Default `small` scale uses a folded 5-cube (32 ToRs).

use dcn_bench::{fluid_curve, fraction_sweep, parse_cli, Series};
use dcn_core::dynamicnet::{RestrictedDynamic, UnrestrictedDynamic};
use dcn_core::{fat_tree_throughput, tp_throughput, Scale};
use dcn_topology::jellyfish::Jellyfish;
use dcn_topology::longhop::Longhop;

fn main() {
    let cli = parse_cli();
    let lh = match cli.scale {
        Scale::Tiny | Scale::Small => Longhop::folded_hypercube(5, 5),
        Scale::Paper => Longhop::paper_fig5b(),
    };
    let longhop = lh.build();
    let racks = longhop.num_nodes() as u32;
    let net_deg = lh.generators.len() as u32;
    let servers = lh.servers_per_switch;
    let jf = Jellyfish::new(racks, net_deg, servers, cli.seed).build();

    let xs = fraction_sweep(10);
    eprintln!("solving Longhop ({racks} ToRs) ...");
    let lh_curve = fluid_curve(&longhop, &xs, cli.seed);
    eprintln!("solving Jellyfish ...");
    let jf_curve = fluid_curve(&jf, &xs, cli.seed);

    let alpha = jf_curve
        .iter()
        .find(|p| (p.x - 1.0).abs() < 1e-9)
        .unwrap()
        .lower;
    let delta = 1.5;
    let unrestricted =
        UnrestrictedDynamic::equal_cost(net_deg as f64, servers as f64, delta).throughput();
    let restricted = RestrictedDynamic::equal_cost(net_deg as f64, servers as usize, delta);
    let ports_per_server = (net_deg + servers) as f64 / servers as f64;
    let ft_alpha = ((ports_per_server - 1.0) / 4.0).min(1.0);
    let ft_beta = 2.0 / (net_deg + servers) as f64;

    let mut s = Series::new(
        "fig5b_longhop",
        "fraction_with_demand",
        &[
            "tp",
            "jellyfish_lo",
            "jellyfish_hi",
            "longhop_lo",
            "longhop_hi",
            "unrestricted_dyn_1.5",
            "restricted_dyn_1.5",
            "equal_cost_fat_tree",
        ],
    );
    for (i, &x) in xs.iter().enumerate() {
        let active = ((racks as f64) * x).round() as usize;
        s.push(
            x,
            vec![
                tp_throughput(alpha, x),
                jf_curve[i].lower,
                jf_curve[i].upper,
                lh_curve[i].lower,
                lh_curve[i].upper,
                unrestricted,
                restricted.throughput_bound(active),
                fat_tree_throughput(ft_alpha, ft_beta, x),
            ],
        );
    }
    s.finish(&cli);
}
