//! Runs every figure/table binary in sequence, forwarding `--scale`,
//! `--seed`, and `--out` (default `results/`). Intended entry point for
//! regenerating the full evaluation:
//!
//! ```text
//! cargo run --release -p dcn-bench --bin run_all -- --out results
//! ```

use std::process::Command;

const BINARIES: &[&str] = &[
    "fig1_observation1",
    "fig2_tp_curve",
    "table1_costs",
    "fig3_xpander_floorplan",
    "fig4_toy_example",
    "fig5a_slimfly",
    "fig5b_longhop",
    "fig6a_jellyfish_fraction",
    "fig6b_jellyfish_scaling",
    "fig7a_path_diversity",
    "fig7b_neighbor_racks",
    "fig7c_all_to_all",
    "fig8_flow_size_cdfs",
    "fig9_a2a_sweep",
    "fig10_permute_sweep",
    "fig11_permute_load",
    "fig12_pareto_hull",
    "fig13_projector",
    "fig14_skew",
    "fig15_large_scale",
    "ablate_q",
    "ablate_ecn",
    "ablate_flowlet",
    "ablate_adaptive",
    "ablate_failures",
    "ablate_transport",
    "ablate_congestion_aware",
    "conjecture24_search",
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if !args.iter().any(|a| a == "--out") {
        args.push("--out".into());
        args.push("results".into());
    }
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("exe dir");
    let mut failures = Vec::new();
    for bin in BINARIES {
        let path = dir.join(bin);
        eprintln!("==== {bin} ====");
        let started = std::time::Instant::now();
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {path:?}: {e}"));
        eprintln!("==== {bin} done in {:?} ====", started.elapsed());
        if !status.success() {
            eprintln!("!!!! {bin} FAILED: {status}");
            failures.push(*bin);
        }
    }
    if failures.is_empty() {
        eprintln!("all {} experiments completed", BINARIES.len());
    } else {
        eprintln!("{} experiments failed: {failures:?}", failures.len());
        std::process::exit(1);
    }
}
