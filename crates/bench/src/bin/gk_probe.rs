//! Timing probe for the Garg–Könemann solver on the Fig 5a instance.
use dcn_maxflow::concurrent::{max_concurrent_flow, Commodity, GkOptions};
use dcn_maxflow::network::FlowNetwork;
use dcn_topology::slimfly::SlimFly;
use dcn_workloads::longest_matching;

fn main() {
    let t = SlimFly::paper_fig5a().build();
    let racks = t.tors_with_servers();
    let net = FlowNetwork::from_topology(&t);
    for &(eps, gap) in &[(0.45, 0.2), (0.3, 0.15f64)] {
        {
            let &x = &1.0f64;
            let pairs = longest_matching(&t, &racks, x, 1);
            let coms: Vec<Commodity> = pairs
                .iter()
                .map(|&(a, b)| Commodity {
                    src: a,
                    dst: b,
                    demand: t.servers_at(a) as f64,
                })
                .collect();
            let start = std::time::Instant::now();
            let r = max_concurrent_flow(
                &net,
                &coms,
                GkOptions {
                    epsilon: eps,
                    target: Some(1.0),
                    gap,
                    max_phases: 2_000_000,
                },
            );
            println!(
                "eps={eps} gap={gap} x={x} pairs={} lam={:.4} ub={:.4} phases={} dij={} wall={:?}",
                pairs.len(),
                r.throughput,
                r.upper_bound,
                r.phases,
                r.dijkstra_calls,
                start.elapsed()
            );
        }
    }
}
