//! Fig 7c: all-to-all traffic over every server. VLB's 2× capacity tax
//! now hurts — its average FCT deteriorates with load while ECMP matches
//! the full-bandwidth fat-tree.

use dcn_bench::{fct_point, packet_setup, parse_cli, rate_sweep, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_workloads::{AllToAll, PFabricWebSearch};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);

    // Paper sweeps to 300K flow-starts/s over 1024 servers (~293/server/s).
    let servers = pair.fat_tree.num_servers() as f64;
    let rates = rate_sweep(290.0 * servers, 6);

    let mut s = Series::new(
        "fig7c_all_to_all",
        "flow_starts_per_s",
        &[
            "fat_tree_avg_fct_ms",
            "xpander_ecmp_avg_fct_ms",
            "xpander_vlb_avg_fct_ms",
        ],
    );
    for &rate in &rates {
        eprintln!("λ = {rate}");
        let ft_pat = AllToAll::new(&pair.fat_tree, pair.fat_tree.tors_with_servers());
        let ft = fct_point(
            &pair.fat_tree,
            Routing::Ecmp,
            SimConfig::default(),
            &ft_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        let xp_pat = AllToAll::new(&pair.xpander, pair.xpander.tors_with_servers());
        let ecmp = fct_point(
            &pair.xpander,
            Routing::Ecmp,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        let vlb = fct_point(
            &pair.xpander,
            Routing::Vlb,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        s.push(rate, vec![ft.avg_fct_ms, ecmp.avg_fct_ms, vlb.avg_fct_ms]);
    }
    s.finish(&cli);
}
