//! Ablation: the Q-threshold HYB against the congestion-aware hybrid
//! (§6.3's un-simplified design) and the KSP baseline, on both corner
//! workloads of Fig 7 — skewed neighbor-rack traffic and uniform A2A.

use dcn_bench::{fct_point, packet_setup, parse_cli, Series};
use dcn_core::{paper_networks, Routing};
use dcn_routing::PAPER_Q_BYTES;
use dcn_sim::SimConfig;
use dcn_workloads::{AllToAll, ExplicitServers, PFabricWebSearch};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let xp = &pair.xpander;
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);

    let l = xp.link(0);
    let per_rack = xp.servers_at(l.a).min(xp.servers_at(l.b));
    let neighbor = ExplicitServers::first_on_racks(xp, &[l.a, l.b], per_rack);
    let uniform = AllToAll::new(xp, xp.tors_with_servers());
    let neighbor_lambda = 500.0 * (2 * per_rack) as f64;
    let uniform_lambda = 150.0 * xp.num_servers() as f64;

    let schemes = [
        ("hyb_q100k", Routing::Hyb(PAPER_Q_BYTES)),
        ("adaptive_m1", Routing::AdaptiveHyb(1)),
        ("adaptive_m10", Routing::AdaptiveHyb(10)),
        ("adaptive_m100", Routing::AdaptiveHyb(100)),
        ("ksp8", Routing::Ksp(8)),
    ];

    let mut s = Series::new(
        "ablate_adaptive",
        "scheme_index",
        &[
            "neighbor_avg_fct_ms",
            "uniform_avg_fct_ms",
            "uniform_p99_short_ms",
        ],
    );
    println!(
        "# scheme order: {:?}",
        schemes.iter().map(|x| x.0).collect::<Vec<_>>()
    );
    for (i, (name, routing)) in schemes.iter().enumerate() {
        eprintln!("scheme {name}");
        let n = fct_point(
            xp,
            *routing,
            SimConfig::default(),
            &neighbor,
            &sizes,
            neighbor_lambda,
            setup,
            cli.seed,
        );
        let u = fct_point(
            xp,
            *routing,
            SimConfig::default(),
            &uniform,
            &sizes,
            uniform_lambda,
            setup,
            cli.seed,
        );
        s.push(
            i as f64,
            vec![n.avg_fct_ms, u.avg_fct_ms, u.p99_short_fct_ms],
        );
    }
    s.finish(&cli);
}
