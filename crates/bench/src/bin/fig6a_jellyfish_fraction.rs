//! Fig 6a: Jellyfish built with 80% / 50% / 40% of a full fat-tree's
//! switches (same port count, same servers) under longest-matching TMs.
//! Paper scale uses k=20 (500 switches, 2000 servers); `small` uses k=8.

use dcn_bench::{fluid_curve, fraction_sweep, parse_cli, Series};
use dcn_core::Scale;
use dcn_topology::fattree::FatTree;
use dcn_topology::jellyfish::Jellyfish;

fn main() {
    let cli = parse_cli();
    let k = match cli.scale {
        Scale::Tiny => 4,
        Scale::Small => 8,
        Scale::Paper => 20,
    };
    let ft = FatTree::full(k);
    let servers = ft.num_servers() as u32;
    let xs = fraction_sweep(10);

    let mut curves = Vec::new();
    for &pct in &[0.8, 0.5, 0.4] {
        let switches = (ft.num_switches() as f64 * pct) as u32;
        let s_per = servers.div_ceil(switches);
        let net_deg = k - s_per;
        // Jellyfish needs an even switches × degree product.
        let switches = if (switches * net_deg) % 2 == 1 {
            switches - 1
        } else {
            switches
        };
        eprintln!("jellyfish {pct}: {switches} switches, {net_deg} net ports, {s_per} servers/sw");
        let jf = Jellyfish::new(switches, net_deg, s_per, cli.seed).build();
        curves.push(fluid_curve(&jf, &xs, cli.seed));
    }

    let mut s = Series::new(
        "fig6a_jellyfish_fraction",
        "fraction_with_demand",
        &[
            "jf80_lo", "jf80_hi", "jf50_lo", "jf50_hi", "jf40_lo", "jf40_hi",
        ],
    );
    for (i, &x) in xs.iter().enumerate() {
        s.push(
            x,
            vec![
                curves[0][i].lower,
                curves[0][i].upper,
                curves[1][i].lower,
                curves[1][i].upper,
                curves[2][i].lower,
                curves[2][i].upper,
            ],
        );
    }
    s.finish(&cli);
}
