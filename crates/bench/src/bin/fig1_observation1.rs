//! Fig 1 / Observation 1: an oversubscribed fat-tree caps the throughput
//! of a traffic matrix involving only 2/k of its servers at the
//! oversubscription fraction x.
//!
//! Prints, per (k, core fraction): the fraction of servers involved, the
//! predicted cap x, and the throughput the fluid-flow solver actually
//! achieves on the constructed two-pod TM.

use dcn_bench::{parse_cli, Series};
use dcn_core::theory::{observation1_fraction, observation1_throughput};

fn main() {
    let cli = parse_cli();
    let mut s = Series::new(
        "fig1_observation1",
        "core_fraction",
        &[
            "k",
            "servers_involved",
            "predicted_cap",
            "measured_throughput",
        ],
    );
    let ks: &[u32] = match cli.scale {
        dcn_core::Scale::Tiny => &[4],
        dcn_core::Scale::Small => &[4, 8],
        dcn_core::Scale::Paper => &[4, 8, 12, 16],
    };
    for &k in ks {
        let h = k / 2;
        for keep in 1..=h {
            let x = keep as f64 / h as f64;
            let measured = observation1_throughput(k, keep);
            s.push(x, vec![k as f64, observation1_fraction(k), x, measured]);
        }
    }
    s.finish(&cli);
}
