//! `bench` — engine performance benchmarks with a committed baseline.
//!
//! ```text
//! cargo run --release -p dcn-bench --bin bench -- perf            # report
//! cargo run --release -p dcn-bench --bin bench -- perf --bless   # write BENCH_sim.json
//! cargo run --release -p dcn-bench --bin bench -- perf --check   # assert vs BENCH_sim.json
//! ```
//!
//! `perf` runs the suite in [`dcn_bench::perf`]: three transports at two
//! fat-tree sizes, reporting events/second and wall time per case.
//! Simulated fields are byte-stable; `--check` compares them exactly
//! against the committed `BENCH_sim.json` and asserts each case's rate
//! stays above half the blessed baseline (loose on purpose: it catches an
//! engine regression, not CI machine jitter). Re-baseline deliberate
//! engine changes with `--bless` so the perf trajectory is reviewed next
//! to the code that moved it; `dcnstat bench` diffs two baselines.
//!
//! `--counters` switches the report table to the engine's deterministic
//! self-observability columns (epochs, cross-shard packets, calendar
//! spills/fallbacks, arena high-water, shard balance extremes) instead of
//! the wall-clock columns; the JSON rows always carry both.
//!
//! `--out <path>` overrides the baseline location (default
//! `BENCH_sim.json` in the working directory — the repo root under CI).

use dcn_bench::perf::{case_label, case_rate, check_perf, check_thread_invariance, run_perf_suite};
use dcn_json::Json;

fn fail(msg: &str) -> ! {
    eprintln!("bench: error: {msg}");
    std::process::exit(1)
}

const USAGE: &str = "usage: bench perf [--bless | --check] [--counters] [--seed N] [--out <path>]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("perf") {
        fail(USAGE);
    }
    let mut bless = false;
    let mut check = false;
    let mut counters = false;
    let mut seed = 1u64;
    let mut path = "BENCH_sim.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--bless" => bless = true,
            "--check" => check = true,
            "--counters" => counters = true,
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| fail("--seed takes an integer"));
            }
            "--out" => {
                i += 1;
                path = args
                    .get(i)
                    .unwrap_or_else(|| fail("--out takes a path"))
                    .clone();
            }
            other => fail(&format!("unknown flag {other}\n{USAGE}")),
        }
        i += 1;
    }
    if bless && check {
        fail("--bless and --check are mutually exclusive");
    }

    let report = run_perf_suite(seed);
    let u = |c: &Json, k: &str| c.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    if counters {
        // The engine self-observability columns: all deterministic, so
        // they are part of the blessed baseline and exact-checked.
        println!(
            "case\tevents\tepochs\txshard\tspills\tfallbacks\tcal_peak\tarena_hwm\t\
             shard_ev_max\tshard_ev_min"
        );
    } else {
        println!("case\tevents\twall_ms\tevents_per_sec");
    }
    if let Some(cases) = report.get("cases").and_then(|c| c.as_array()) {
        for c in cases {
            if counters {
                println!(
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    case_label(c),
                    u(c, "events"),
                    u(c, "epochs"),
                    u(c, "xshard_pkts"),
                    u(c, "ladder_spills"),
                    u(c, "scatter_fallbacks"),
                    u(c, "calendar_peak_max"),
                    u(c, "arena_hwm"),
                    u(c, "shard_events_max"),
                    u(c, "shard_events_min"),
                );
            } else {
                println!(
                    "{}\t{}\t{}\t{}",
                    case_label(c),
                    u(c, "events"),
                    u(c, "wall_ms"),
                    case_rate(c).unwrap_or(0.0) as u64,
                );
            }
        }
    }

    if bless {
        // Even a fresh baseline must honor the parallel-engine contract:
        // the shard-scaling rows may not disagree on simulated fields.
        let errs = check_thread_invariance(&report);
        if !errs.is_empty() {
            for e in &errs {
                eprintln!("bench: {e}");
            }
            fail("refusing to bless a thread-dependent baseline");
        }
        dcn_core::write_atomic(&path, report.pretty().as_bytes())
            .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!("blessed {path}");
    } else if check {
        let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            fail(&format!(
                "read {path}: {e} (run `bench perf --bless` first)"
            ))
        });
        let baseline = Json::parse(&body).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
        let errs = check_perf(&report, &baseline);
        if !errs.is_empty() {
            for e in &errs {
                eprintln!("bench: {e}");
            }
            std::process::exit(1);
        }
        eprintln!("ok: all cases match {path} (simulated fields exact, rates above floor)");
    }
}
