//! Ablation: the flowlet gap (the paper fixes 50 µs). A tiny gap
//! re-routes nearly per packet (reordering risk under VLB/HYB); a huge
//! gap pins each flow to one path (per-flow routing).

use dcn_bench::{fct_point, packet_setup, parse_cli, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::{SimConfig, US};
use dcn_workloads::{active_racks_for_servers, PFabricWebSearch, Permutation};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let total = pair.fat_tree.num_servers() as u32;
    let n_active = (total as f64 * 0.31).round() as u32;
    let lambda = 117.0 * total as f64 * 0.5;

    let racks = active_racks_for_servers(
        &pair.xpander,
        &pair.xpander.tors_with_servers(),
        n_active,
        true,
        cli.seed,
    );

    let mut s = Series::new(
        "ablate_flowlet",
        "flowlet_gap_us",
        &["avg_fct_ms", "p99_short_fct_ms", "long_tput_gbps"],
    );
    for &gap_us in &[1u64, 10, 50, 500, 10_000_000] {
        eprintln!("gap = {gap_us} µs");
        let cfg = SimConfig {
            flowlet_gap_ns: gap_us * US,
            ..Default::default()
        };
        let pat = Permutation::new(&pair.xpander, racks.clone(), cli.seed);
        let m = fct_point(
            &pair.xpander,
            Routing::PAPER_HYB,
            cfg,
            &pat,
            &sizes,
            lambda,
            setup,
            cli.seed,
        );
        s.push(
            gap_us as f64,
            vec![m.avg_fct_ms, m.p99_short_fct_ms, m.avg_long_tput_gbps],
        );
    }
    s.finish(&cli);
}
