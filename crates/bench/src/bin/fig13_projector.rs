//! Fig 13: the ProjecToR comparison. ProjecToR's evaluation pitted 128
//! ToRs with 16 *dynamic* ports each against a full-bandwidth fat-tree —
//! the paper swaps in an Xpander with 16 *static* ports per ToR (cheaper
//! than ProjecToR at δ=1.5) and reproduces the same gains.
//!
//! The workload is a pair-level-skewed stand-in for the proprietary
//! Microsoft trace: 77% of traffic between 4% of rack pairs (DESIGN.md §4).
//! Panels: (a) average FCT and (b) p99 short-flow FCT with server-level
//! bottlenecks ignored (ProjecToR's method); (c) average FCT with real
//! 10 Gbps server links.

use dcn_bench::{fct_point, packet_setup, parse_cli, rate_sweep, Series};
use dcn_core::{paper_networks, Routing, Scale};
use dcn_sim::SimConfig;
use dcn_topology::xpander::Xpander;
use dcn_workloads::{PFabricWebSearch, PairSkew};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    // The flat Xpander of §6.6: same ToR count as the fat-tree's edge
    // layer, double-ish network ports, no other switches.
    let xp = match cli.scale {
        Scale::Tiny => Xpander::for_switches(3, 8, 2, cli.seed),
        Scale::Small => Xpander::for_switches(7, 32, 4, cli.seed),
        Scale::Paper => Xpander::paper_projector(cli.seed),
    }
    .build();
    let ft = &pair.fat_tree;
    assert_eq!(xp.num_servers(), ft.num_servers());

    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let servers = ft.num_servers() as f64;
    // Paper: 2K–14K flow starts/s over 1024 servers. At small scale the
    // same per-server rate leaves every ToR idle (fewer servers behind
    // each hot rack), so sweep ~3x further to reach the contrast regime.
    let per_server = if cli.scale == Scale::Paper {
        13.7
    } else {
        150.0
    };
    let rates = rate_sweep(per_server * servers, 6);

    let mut a = Series::new(
        "fig13a_projector_avg_fct_unconstrained",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut b = Series::new(
        "fig13b_projector_p99_short_unconstrained",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut c = Series::new(
        "fig13c_projector_avg_fct_constrained",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );

    let unconstrained = SimConfig::default().unconstrained_servers();
    let constrained = SimConfig::default();
    for &rate in &rates {
        eprintln!("λ = {rate}");
        let ft_pat = PairSkew::projector_trace(ft, ft.tors_with_servers(), cli.seed);
        let xp_pat = PairSkew::projector_trace(&xp, xp.tors_with_servers(), cli.seed);

        let run = |cfg: SimConfig| {
            let f = fct_point(
                ft,
                Routing::Ecmp,
                cfg,
                &ft_pat,
                &sizes,
                rate,
                setup,
                cli.seed,
            );
            let e = fct_point(
                &xp,
                Routing::Ecmp,
                cfg,
                &xp_pat,
                &sizes,
                rate,
                setup,
                cli.seed,
            );
            let h = fct_point(
                &xp,
                Routing::PAPER_HYB,
                cfg,
                &xp_pat,
                &sizes,
                rate,
                setup,
                cli.seed,
            );
            (f, e, h)
        };
        let (fu, eu, hu) = run(unconstrained);
        a.push(rate, vec![fu.avg_fct_ms, eu.avg_fct_ms, hu.avg_fct_ms]);
        b.push(
            rate,
            vec![
                fu.p99_short_fct_ms,
                eu.p99_short_fct_ms,
                hu.p99_short_fct_ms,
            ],
        );
        let (fc, ec, hc) = run(constrained);
        c.push(rate, vec![fc.avg_fct_ms, ec.avg_fct_ms, hc.avg_fct_ms]);
    }
    a.finish(&cli);
    b.finish(&cli);
    c.finish(&cli);
}
