//! Conjecture 2.4 explorer: "Given a static network G and an arbitrary TM
//! M for which G achieves throughput t, there exists a permutation TM P
//! with throughput ≤ t."
//!
//! For random small expanders and random hose-compliant TMs, compares the
//! TM's exact LP throughput against the worst over sampled permutations.
//! A row with `counterexample = 1` would *refute* the conjecture (none
//! are expected; the paper leaves it open, and this search supports it).

use dcn_bench::{parse_cli, Series};
use dcn_maxflow::concurrent::Commodity;
use dcn_maxflow::lp::exact_concurrent_flow;
use dcn_maxflow::network::FlowNetwork;
use dcn_topology::jellyfish::Jellyfish;
use dcn_workloads::fluid;

fn lp_throughput(net: &FlowNetwork, tm: &fluid::FluidTm) -> f64 {
    let coms: Vec<Commodity> = tm
        .commodities
        .iter()
        .map(|&(s, d, dem)| Commodity {
            src: s,
            dst: d,
            demand: dem,
        })
        .collect();
    exact_concurrent_flow(net, &coms)
}

fn main() {
    let cli = parse_cli();
    let (n_graphs, n_tms, n_perms) = match cli.scale {
        dcn_core::Scale::Tiny => (2, 2, 4),
        dcn_core::Scale::Small => (4, 3, 8),
        dcn_core::Scale::Paper => (8, 5, 16),
    };

    let mut s = Series::new(
        "conjecture24_search",
        "instance",
        &[
            "hose_tm_throughput",
            "worst_permutation_throughput",
            "counterexample",
        ],
    );
    let mut idx = 0.0;
    let mut counterexamples = 0;
    for g in 0..n_graphs {
        // Small so the exact LP stays fast: 8 racks, degree 3.
        let t = Jellyfish::new(8, 3, 2, cli.seed + g).build();
        let net = FlowNetwork::from_topology(&t);
        let racks = t.tors_with_servers();

        let mut worst_perm = f64::INFINITY;
        for p in 0..n_perms {
            let tm = fluid::permutation(&t, &racks, cli.seed * 1000 + p);
            worst_perm = worst_perm.min(lp_throughput(&net, &tm));
        }

        for m in 0..n_tms {
            let tm = fluid::random_hose(&t, &racks, cli.seed * 7777 + g * 100 + m);
            let t_m = lp_throughput(&net, &tm);
            // Conjecture: some permutation is at least as hard as M.
            let counter = if worst_perm > t_m + 1e-6 { 1.0 } else { 0.0 };
            if counter > 0.0 {
                counterexamples += 1;
                eprintln!(
                    "potential counterexample: graph seed {}, TM '{}' (t={t_m:.4} < worst perm {worst_perm:.4})",
                    cli.seed + g,
                    tm.name
                );
            }
            s.push(idx, vec![t_m, worst_perm, counter]);
            idx += 1.0;
        }
    }
    s.finish(&cli);
    eprintln!(
        "{counterexamples} potential counterexamples over {} instances \
         (0 expected; sampled permutations only give an upper bound on the worst case)",
        idx as u64
    );
}
