//! Extension experiment (not in the paper): graceful degradation under
//! link failures. Expanders are known to degrade smoothly, while a
//! fat-tree's layered structure concentrates damage; this quantifies the
//! effect with the same FCT methodology as §6.
//!
//! Two modes:
//!
//! * default (static): links are removed before the run and the routing
//!   is built on the degraded topology — steady-state damage.
//! * `--dynamic`: links fail *during* the measurement window and recover
//!   later; routing reconverges after a delay and senders reroute on RTO.
//!   Emits the fault-drop and recovery-latency columns alongside FCT.

use dcn_bench::{fct_point, packet_setup, parse_cli, Series};
use dcn_core::{paper_networks, run_fct_experiment_with_faults, Routing};
use dcn_sim::{FaultPlan, SimConfig};
use dcn_workloads::{generate_flows, AllToAll, PFabricWebSearch};

fn main() {
    let cli = parse_cli();
    if cli.has_flag("dynamic") {
        dynamic_mode();
    } else {
        static_mode();
    }
}

/// Steady-state damage: fail a fraction of links up front, route around.
fn static_mode() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let lambda_ft = 100.0 * pair.fat_tree.num_servers() as f64;
    let lambda_xp = 100.0 * pair.xpander.num_servers() as f64;

    let mut s = Series::new(
        "ablate_failures",
        "failed_link_fraction",
        &["fat_tree_avg_fct_ms", "xpander_hyb_avg_fct_ms"],
    );
    for &frac in &[0.0, 0.05, 0.1, 0.15, 0.2] {
        eprintln!("failures = {frac}");
        let ft = pair.fat_tree.with_random_failures(frac, cli.seed);
        let xp = pair.xpander.with_random_failures(frac, cli.seed);
        let ft_pat = AllToAll::new(&ft, ft.tors_with_servers());
        let xp_pat = AllToAll::new(&xp, xp.tors_with_servers());
        let f = fct_point(
            &ft,
            Routing::Ecmp,
            SimConfig::default(),
            &ft_pat,
            &sizes,
            lambda_ft,
            setup,
            cli.seed,
        );
        let x = fct_point(
            &xp,
            Routing::PAPER_HYB,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            lambda_xp,
            setup,
            cli.seed,
        );
        s.push(frac, vec![f.avg_fct_ms, x.avg_fct_ms]);
    }
    s.finish(&cli);
}

/// Fail-then-recover: the fraction of links goes down a quarter into the
/// measurement window and comes back at the midpoint, so the run covers
/// outage, reconvergence, and recovery on the *same* flows.
fn dynamic_mode() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let (w0, w1) = setup.window;
    let span = w1 - w0;
    let down_at = w0 + span / 4;
    let up_at = w0 + span / 2;

    let mut s = Series::new(
        "ablate_failures_dynamic",
        "failed_link_fraction",
        &[
            "fat_tree_avg_fct_ms",
            "fat_tree_fault_drops",
            "fat_tree_failed_flows",
            "fat_tree_avg_recovery_ms",
            "xpander_hyb_avg_fct_ms",
            "xpander_hyb_fault_drops",
            "xpander_hyb_failed_flows",
            "xpander_hyb_avg_recovery_ms",
        ],
    );
    for &frac in &[0.0, 0.05, 0.1, 0.15, 0.2] {
        eprintln!("dynamic failures = {frac}");
        let mut row = Vec::with_capacity(8);
        for (t, routing) in [
            (&pair.fat_tree, Routing::Ecmp),
            (&pair.xpander, Routing::PAPER_HYB),
        ] {
            let count = (frac * t.num_links() as f64).round() as usize;
            let plan = if count == 0 {
                FaultPlan::new()
            } else {
                FaultPlan::random_link_outages(t, count, down_at, Some(up_at), cli.seed)
            };
            let lambda = 100.0 * t.num_servers() as f64;
            let pattern = AllToAll::new(t, t.tors_with_servers());
            let flows = generate_flows(&pattern, &sizes, lambda, setup.horizon_s, cli.seed);
            let (m, c) = run_fct_experiment_with_faults(
                t,
                routing,
                SimConfig::default(),
                &flows,
                setup.window,
                setup.max_time,
                Some(&plan),
            );
            row.extend([
                m.avg_fct_ms,
                c.fault_drops as f64,
                m.failed as f64,
                m.avg_recovery_ms,
            ]);
        }
        s.push(frac, row);
    }
    s.finish(&cli);
}
