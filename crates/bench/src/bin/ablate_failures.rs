//! Extension experiment (not in the paper): graceful degradation under
//! random link failures. Expanders are known to degrade smoothly, while a
//! fat-tree's layered structure concentrates damage; this quantifies the
//! effect with the same FCT methodology as §6.

use dcn_bench::{fct_point, packet_setup, parse_cli, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_workloads::{AllToAll, PFabricWebSearch};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let lambda_ft = 100.0 * pair.fat_tree.num_servers() as f64;
    let lambda_xp = 100.0 * pair.xpander.num_servers() as f64;

    let mut s = Series::new(
        "ablate_failures",
        "failed_link_fraction",
        &["fat_tree_avg_fct_ms", "xpander_hyb_avg_fct_ms"],
    );
    for &frac in &[0.0, 0.05, 0.1, 0.15, 0.2] {
        eprintln!("failures = {frac}");
        let ft = pair.fat_tree.with_random_failures(frac, cli.seed);
        let xp = pair.xpander.with_random_failures(frac, cli.seed);
        let ft_pat = AllToAll::new(&ft, ft.tors_with_servers());
        let xp_pat = AllToAll::new(&xp, xp.tors_with_servers());
        let f = fct_point(
            &ft, Routing::Ecmp, SimConfig::default(), &ft_pat, &sizes, lambda_ft, setup, cli.seed,
        );
        let x = fct_point(
            &xp, Routing::PAPER_HYB, SimConfig::default(), &xp_pat, &sizes, lambda_xp, setup,
            cli.seed,
        );
        s.push(frac, vec![f.avg_fct_ms, x.avg_fct_ms]);
    }
    s.finish(&cli);
}
