//! Ablation: HYB's Q threshold (§6.3). Q=0 is pure VLB, Q=∞ pure ECMP;
//! the paper's 100 KB sits where short flows keep shortest paths and long
//! flows get load-balanced. Permute(0.31) on the 2/3-cost Xpander.

use dcn_bench::{fct_point, packet_setup, parse_cli, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_workloads::{active_racks_for_servers, PFabricWebSearch, Permutation};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let total = pair.fat_tree.num_servers() as u32;
    let n_active = (total as f64 * 0.31).round() as u32;
    let lambda = 117.0 * total as f64 * 0.5; // mid-load of the Fig 11 sweep

    let racks = active_racks_for_servers(
        &pair.xpander,
        &pair.xpander.tors_with_servers(),
        n_active,
        true,
        cli.seed,
    );

    let mut s = Series::new(
        "ablate_q",
        "q_bytes",
        &["avg_fct_ms", "p99_short_fct_ms", "long_tput_gbps"],
    );
    for &q in &[0u64, 10_000, 100_000, 1_000_000, u64::MAX] {
        eprintln!("Q = {q}");
        let pat = Permutation::new(&pair.xpander, racks.clone(), cli.seed);
        let m = fct_point(
            &pair.xpander,
            Routing::Hyb(q),
            SimConfig::default(),
            &pat,
            &sizes,
            lambda,
            setup,
            cli.seed,
        );
        let x = if q == u64::MAX { 1e12 } else { q as f64 };
        s.push(
            x,
            vec![m.avg_fct_ms, m.p99_short_fct_ms, m.avg_long_tput_gbps],
        );
    }
    s.finish(&cli);
}
