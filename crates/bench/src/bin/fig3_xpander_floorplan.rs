//! Fig 3: the Xpander's physical organization — 486 24-port switches,
//! 3402 servers, 18 meta-nodes in 6 pods of 3, with cable bundling and
//! the rack floor plan.

use dcn_bench::parse_cli;
use dcn_json::Json;
use dcn_topology::metrics::{cable_stats, path_stats, xpander_floor_plan};
use dcn_topology::xpander::{second_eigenvalue, Xpander};

fn main() {
    let cli = parse_cli();
    let xp = Xpander::paper_fig3(cli.seed);
    let t = xp.build();
    let meta_nodes = (xp.net_degree + 1) as usize;
    let fp = xpander_floor_plan(&t, meta_nodes, 6, 34);
    let cables = cable_stats(&t);
    let paths = path_stats(&t);
    let lam2 = second_eigenvalue(&t);
    let ramanujan = 2.0 * ((xp.net_degree as f64) - 1.0).sqrt();

    println!("# fig3_xpander_floorplan");
    println!("switches\t{}", t.num_nodes());
    println!("servers\t{}", t.num_servers());
    println!("net_ports_per_switch\t{}", xp.net_degree);
    println!("servers_per_switch\t{}", xp.servers_per_switch);
    println!("pods\t{}", fp.pods);
    println!("meta_nodes_per_pod\t{}", fp.meta_nodes_per_pod);
    println!("switches_per_meta_node\t{}", fp.switches_per_meta_node);
    println!("servers_per_meta_node\t{}", fp.servers_per_meta_node);
    println!("racks_per_meta_node\t{}", fp.racks_per_meta_node);
    println!("cable_bundles\t{}", cables.bundles);
    println!("cables_per_bundle\t{}", xp.lift);
    println!("intra_meta_cables\t{}", cables.intra_group);
    println!("diameter\t{}", paths.diameter);
    println!("avg_path_length\t{:.4}", paths.avg_path_length);
    println!("lambda2\t{:.4}", lam2);
    println!("ramanujan_bound\t{:.4}", ramanujan);

    if let Some(dir) = &cli.out_dir {
        std::fs::create_dir_all(dir).expect("out dir");
        let body = Json::obj(vec![
            ("switches", Json::from(t.num_nodes())),
            ("servers", Json::from(t.num_servers())),
            ("pods", Json::from(fp.pods)),
            ("meta_nodes_per_pod", Json::from(fp.meta_nodes_per_pod)),
            ("racks_per_meta_node", Json::from(fp.racks_per_meta_node)),
            ("cable_bundles", Json::from(cables.bundles)),
            ("cables_per_bundle", Json::from(xp.lift)),
            ("diameter", Json::from(paths.diameter)),
            ("avg_path_length", Json::from(paths.avg_path_length)),
            ("lambda2", Json::from(lam2)),
            ("ramanujan_bound", Json::from(ramanujan)),
        ]);
        dcn_core::write_atomic(
            format!("{dir}/fig3_xpander_floorplan.json"),
            body.pretty().as_bytes(),
        )
        .expect("write");
        eprintln!("wrote {dir}/fig3_xpander_floorplan.json");
    }
}
