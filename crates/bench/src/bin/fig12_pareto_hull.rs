//! Fig 12: A2A(0.31) with HULL's Pareto flow sizes (mostly tiny flows):
//! 99th-percentile FCT of short flows. Xpander's shorter paths give it
//! *lower* tail latency than the full-bandwidth fat-tree.

use dcn_bench::{fct_point, packet_setup, parse_cli, rate_sweep, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_workloads::{active_racks_for_servers, AllToAll, ParetoHull};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = ParetoHull::new();
    let setup = packet_setup(cli.scale);

    let total_servers = pair.fat_tree.num_servers() as u32;
    let n_active = (total_servers as f64 * 0.31).round() as u32;
    // Paper sweeps to 3M flow-starts/s at 1024 servers (~2930/server/s).
    let rates = rate_sweep(2900.0 * total_servers as f64, 6);

    let ft_racks = active_racks_for_servers(
        &pair.fat_tree,
        &pair.fat_tree.tors_with_servers(),
        n_active,
        false,
        cli.seed,
    );
    let xp_racks = active_racks_for_servers(
        &pair.xpander,
        &pair.xpander.tors_with_servers(),
        n_active,
        true,
        cli.seed,
    );

    let mut s = Series::new(
        "fig12_pareto_hull_p99_short_fct_us",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    for &rate in &rates {
        eprintln!("λ = {rate}");
        let ft_pat = AllToAll::new(&pair.fat_tree, ft_racks.clone());
        let xp_pat = AllToAll::new(&pair.xpander, xp_racks.clone());
        let ft = fct_point(
            &pair.fat_tree,
            Routing::Ecmp,
            SimConfig::default(),
            &ft_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        let ecmp = fct_point(
            &pair.xpander,
            Routing::Ecmp,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        let hyb = fct_point(
            &pair.xpander,
            Routing::PAPER_HYB,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        // The figure's y-axis is µs.
        s.push(
            rate,
            vec![
                ft.p99_short_fct_ms * 1000.0,
                ecmp.p99_short_fct_ms * 1000.0,
                hyb.p99_short_fct_ms * 1000.0,
            ],
        );
    }
    s.finish(&cli);
}
