//! Fig 5a: throughput proportionality, SlimFly, same-equipment Jellyfish,
//! the un/restricted dynamic models at δ = 1.5, and the equal-cost
//! fat-tree, under longest-matching TMs of varying active-server fraction.
//!
//! `--scale paper` uses the paper's q=17 SlimFly (578 ToRs, 25 network +
//! 24 server ports). The default `small` uses q=5 (50 ToRs, 7+4 ports),
//! which keeps each Garg–Könemann solve under a second.

use dcn_bench::{fluid_curve, fraction_sweep, parse_cli, Series};
use dcn_core::dynamicnet::{RestrictedDynamic, UnrestrictedDynamic};
use dcn_core::{fat_tree_throughput, tp_throughput, Scale};
use dcn_topology::jellyfish::Jellyfish;
use dcn_topology::slimfly::SlimFly;

fn main() {
    let cli = parse_cli();
    let (sf, points) = match cli.scale {
        Scale::Tiny | Scale::Small => (SlimFly::new(5, 7), 10),
        Scale::Paper => (SlimFly::paper_fig5a(), 10),
    };
    let slimfly = sf.build();
    let racks = slimfly.num_nodes() as u32;
    let net_deg = sf.net_degree() as u32;
    let servers = sf.servers_per_switch;
    let jf = Jellyfish::new(racks, net_deg, servers, cli.seed).build();

    let xs = fraction_sweep(points);
    eprintln!("solving SlimFly ({racks} ToRs) ...");
    let sf_curve = fluid_curve(&slimfly, &xs, cli.seed);
    eprintln!("solving Jellyfish ...");
    let jf_curve = fluid_curve(&jf, &xs, cli.seed);

    // α for the TP reference comes from Jellyfish at x = 1 (paper's choice).
    let alpha = jf_curve
        .iter()
        .find(|p| (p.x - 1.0).abs() < 1e-9)
        .unwrap()
        .lower;

    let delta = 1.5;
    let unrestricted =
        UnrestrictedDynamic::equal_cost(net_deg as f64, servers as f64, delta).throughput();
    let restricted = RestrictedDynamic::equal_cost(net_deg as f64, servers as usize, delta);

    // Equal-cost fat-tree (analytic; DESIGN.md §3): a full fat-tree spends
    // 5 ports per server, so a static net with p ports/server equals a
    // fat-tree oversubscribed to α_ft = (p − 1)/4; β = 2/k at the same
    // switch port count.
    let ports_per_server = (net_deg + servers) as f64 / servers as f64;
    let ft_alpha = ((ports_per_server - 1.0) / 4.0).min(1.0);
    let ft_beta = 2.0 / (net_deg + servers) as f64;

    let mut s = Series::new(
        "fig5a_slimfly",
        "fraction_with_demand",
        &[
            "tp",
            "jellyfish_lo",
            "jellyfish_hi",
            "slimfly_lo",
            "slimfly_hi",
            "unrestricted_dyn_1.5",
            "restricted_dyn_1.5",
            "equal_cost_fat_tree",
        ],
    );
    for (i, &x) in xs.iter().enumerate() {
        let active = ((racks as f64) * x).round() as usize;
        s.push(
            x,
            vec![
                tp_throughput(alpha, x),
                jf_curve[i].lower,
                jf_curve[i].upper,
                sf_curve[i].lower,
                sf_curve[i].upper,
                unrestricted,
                restricted.throughput_bound(active),
                fat_tree_throughput(ft_alpha, ft_beta, x),
            ],
        );
    }
    s.finish(&cli);
}
