//! Fig 15: the larger-scale comparison — a k=24 fat-tree (3456 servers,
//! 720 switches) versus an Xpander at only 45% of its cost, under
//! Skew(0.04, 0.77). Run in the flow-level simulator (`dcn-flowsim`) to
//! make the scale tractable; DESIGN.md §4 documents the fidelity trade.

use dcn_bench::{packet_setup, parse_cli, rate_sweep, Series};
use dcn_core::{Routing, Scale};
use dcn_flowsim::{FlowSim, FlowSimConfig};
use dcn_sim::compute_metrics;
use dcn_topology::fattree::FatTree;
use dcn_topology::xpander::Xpander;
use dcn_topology::Topology;
use dcn_workloads::{generate_flows, PFabricWebSearch, Skew, TrafficPattern};

fn flow_point(
    t: &Topology,
    routing: Routing,
    pattern: &dyn TrafficPattern,
    rate: f64,
    setup: dcn_bench::PacketSetup,
    seed: u64,
) -> dcn_sim::Metrics {
    let sizes = PFabricWebSearch::new();
    let flows = generate_flows(pattern, &sizes, rate, setup.horizon_s, seed);
    let mut sim = FlowSim::new(t, routing.selector(t), FlowSimConfig::default());
    sim.inject(&flows);
    let records = sim.run(setup.max_time as f64 / 1e9);
    compute_metrics(&records, setup.window.0, setup.window.1)
}

fn main() {
    let cli = parse_cli();
    let (ft_cfg, xp_cfg) = match cli.scale {
        Scale::Tiny => (FatTree::full(8), Xpander::for_switches(5, 36, 4, cli.seed)),
        Scale::Small => (FatTree::full(12), Xpander::for_switches(6, 77, 6, cli.seed)),
        Scale::Paper => (FatTree::full(24), Xpander::paper_fig15(cli.seed)),
    };
    let ft = ft_cfg.build();
    let xp = xp_cfg.build();
    eprintln!(
        "fat-tree: {} switches / {} servers; xpander: {} switches ({}% cost) / {} servers",
        ft.num_nodes(),
        ft.num_servers(),
        xp.num_nodes(),
        (100.0 * xp.num_nodes() as f64 / ft.num_nodes() as f64).round(),
        xp.num_servers()
    );

    let setup = packet_setup(cli.scale);
    let servers = ft.num_servers() as f64;
    // Paper: up to 80K flow starts/s over 3456 servers (~23/server/s).
    let rates = rate_sweep(23.0 * servers, 6);

    let mut a = Series::new(
        "fig15a_large_avg_fct",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut b = Series::new(
        "fig15b_large_p99_short_fct",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut c = Series::new(
        "fig15c_large_long_tput",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );

    for &rate in &rates {
        eprintln!("λ = {rate}");
        let ft_pat = Skew::projector_like(&ft, ft.tors_with_servers(), cli.seed);
        let xp_pat = Skew::projector_like(&xp, xp.tors_with_servers(), cli.seed);
        let f = flow_point(&ft, Routing::Ecmp, &ft_pat, rate, setup, cli.seed);
        let e = flow_point(&xp, Routing::Ecmp, &xp_pat, rate, setup, cli.seed);
        let h = flow_point(&xp, Routing::PAPER_HYB, &xp_pat, rate, setup, cli.seed);
        a.push(rate, vec![f.avg_fct_ms, e.avg_fct_ms, h.avg_fct_ms]);
        b.push(
            rate,
            vec![f.p99_short_fct_ms, e.p99_short_fct_ms, h.p99_short_fct_ms],
        );
        c.push(
            rate,
            vec![
                f.avg_long_tput_gbps,
                e.avg_long_tput_gbps,
                h.avg_long_tput_gbps,
            ],
        );
    }
    a.finish(&cli);
    b.finish(&cli);
    c.finish(&cli);
}
