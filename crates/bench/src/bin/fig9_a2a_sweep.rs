//! Fig 9: A2A(x) with the fraction of active servers on the x-axis, at
//! 167 flow-arrivals/s per active server, pFabric flow sizes.
//! Emits three blocks: (a) average FCT, (b) 99th-percentile FCT of short
//! flows, (c) average throughput of long flows.

use dcn_bench::{fct_point_run, fraction_sweep, packet_setup, parse_cli, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_workloads::{active_racks_for_servers, AllToAll, PFabricWebSearch};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let total_servers = pair.fat_tree.num_servers() as u32;

    let mut a = Series::new(
        "fig9a_a2a_avg_fct",
        "fraction_active",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut b = Series::new(
        "fig9b_a2a_p99_short_fct",
        "fraction_active",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut c = Series::new(
        "fig9c_a2a_long_tput",
        "fraction_active",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );

    for x in fraction_sweep(10) {
        let n_active = ((total_servers as f64) * x).round().max(4.0) as u32;
        let lambda = 167.0 * n_active as f64;
        eprintln!("x = {x:.1}: {n_active} active servers, λ = {lambda}");

        let ft_racks = active_racks_for_servers(
            &pair.fat_tree,
            &pair.fat_tree.tors_with_servers(),
            n_active,
            false,
            cli.seed,
        );
        let xp_racks = active_racks_for_servers(
            &pair.xpander,
            &pair.xpander.tors_with_servers(),
            n_active,
            true,
            cli.seed,
        );
        let ft_pat = AllToAll::new(&pair.fat_tree, ft_racks);
        let xp_pat = AllToAll::new(&pair.xpander, xp_racks);

        let pct = (x * 100.0).round() as u32;
        let ft = fct_point_run(
            &cli,
            &format!("ft_p{pct:03}"),
            &pair.fat_tree,
            Routing::Ecmp,
            SimConfig::default(),
            &ft_pat,
            &sizes,
            lambda,
            setup,
        );
        let ecmp = fct_point_run(
            &cli,
            &format!("xp_ecmp_p{pct:03}"),
            &pair.xpander,
            Routing::Ecmp,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            lambda,
            setup,
        );
        let hyb = fct_point_run(
            &cli,
            &format!("xp_hyb_p{pct:03}"),
            &pair.xpander,
            Routing::PAPER_HYB,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            lambda,
            setup,
        );

        a.push(x, vec![ft.avg_fct_ms, ecmp.avg_fct_ms, hyb.avg_fct_ms]);
        b.push(
            x,
            vec![
                ft.p99_short_fct_ms,
                ecmp.p99_short_fct_ms,
                hyb.p99_short_fct_ms,
            ],
        );
        c.push(
            x,
            vec![
                ft.avg_long_tput_gbps,
                ecmp.avg_long_tput_gbps,
                hyb.avg_long_tput_gbps,
            ],
        );
    }
    a.finish(&cli);
    b.finish(&cli);
    c.finish(&cli);
}
