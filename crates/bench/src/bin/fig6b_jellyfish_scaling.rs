//! Fig 6b: Jellyfish using the same switches as full fat-trees of
//! k = 12 / 24 / 36, but supporting 2× the servers; the advantage should
//! hold or improve with scale. `small` uses k = 6 / 8 / 12.

use dcn_bench::{fluid_curve, fraction_sweep, parse_cli, Series};
use dcn_core::Scale;
use dcn_topology::fattree::FatTree;
use dcn_topology::jellyfish::Jellyfish;

fn main() {
    let cli = parse_cli();
    let ks: &[u32] = match cli.scale {
        Scale::Tiny => &[4, 6],
        Scale::Small => &[6, 8, 12],
        Scale::Paper => &[12, 24, 36],
    };
    let xs = fraction_sweep(10);

    let mut curves = Vec::new();
    let mut cols: Vec<String> = Vec::new();
    for &k in ks {
        let ft = FatTree::full(k);
        let switches = ft.num_switches() as u32;
        let servers = 2 * ft.num_servers() as u32; // twice the fat-tree's
        let s_per = servers.div_ceil(switches);
        let net_deg = k - s_per;
        assert!(net_deg >= 3, "k={k} leaves too few network ports");
        let switches = if (switches * net_deg) % 2 == 1 {
            switches - 1
        } else {
            switches
        };
        eprintln!("k={k}: jellyfish {switches} switches, {net_deg} net, {s_per} srv/sw");
        let jf = Jellyfish::new(switches, net_deg, s_per, cli.seed).build();
        curves.push(fluid_curve(&jf, &xs, cli.seed));
        cols.push(format!("k{k}_lo"));
        cols.push(format!("k{k}_hi"));
    }

    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut s = Series::new("fig6b_jellyfish_scaling", "fraction_with_demand", &col_refs);
    for (i, &x) in xs.iter().enumerate() {
        let mut row = Vec::new();
        for c in &curves {
            row.push(c[i].lower);
            row.push(c[i].upper);
        }
        s.push(x, row);
    }
    s.finish(&cli);
}
