//! Table 1: cost per network port for static and recent dynamic designs,
//! and the resulting flexible-port factor δ.

use dcn_bench::parse_cli;
use dcn_core::cost::{delta_lowest, table1};
use dcn_json::Json;

fn main() {
    let cli = parse_cli();
    println!("# table1_costs");
    println!("design\tcomponent\tlow_usd\thigh_usd");
    for port in table1() {
        for (name, lo, hi) in &port.components {
            println!("{}\t{}\t{}\t{}", port.design, name, lo, hi);
        }
        let (lo, hi) = port.total();
        println!("{}\tTOTAL\t{}\t{}", port.design, lo, hi);
    }
    println!("\ndelta_lowest\t{:.3}", delta_lowest());
    if let Some(dir) = &cli.out_dir {
        std::fs::create_dir_all(dir).expect("out dir");
        let rows: Vec<Json> = table1()
            .iter()
            .map(|p| {
                let (lo, hi) = p.total();
                Json::obj(vec![
                    ("design", Json::from(p.design)),
                    (
                        "components",
                        Json::Arr(
                            p.components
                                .iter()
                                .map(|&(name, lo, hi)| {
                                    Json::Arr(vec![
                                        Json::from(name),
                                        Json::from(lo),
                                        Json::from(hi),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("total", Json::Arr(vec![Json::from(lo), Json::from(hi)])),
                ])
            })
            .collect();
        let body = Json::obj(vec![
            ("table", Json::Arr(rows)),
            ("delta_lowest", Json::from(delta_lowest())),
        ]);
        dcn_core::write_atomic(format!("{dir}/table1_costs.json"), body.pretty().as_bytes())
            .expect("write");
        eprintln!("wrote {dir}/table1_costs.json");
    }
}
