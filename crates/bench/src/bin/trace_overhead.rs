//! Measures what the observability layer costs: the same tiny experiment
//! under the default `NopTracer`, a `CountingTracer`, a `JsonlTracer`
//! writing to memory, and time-series telemetry sampling, reported as
//! simulator events per wall-clock second.
//!
//! The point of the design is that `NopTracer` reports itself disabled,
//! so untraced runs never construct trace events — this binary is the
//! regression guard for that property:
//!
//! ```text
//! cargo run --release -p dcn-bench --bin trace_overhead              # report
//! cargo run --release -p dcn-bench --bin trace_overhead -- --bless  # write baseline
//! cargo run --release -p dcn-bench --bin trace_overhead -- --check  # assert vs baseline
//! ```
//!
//! `--check` fails if the NopTracer rate drops below half the blessed
//! baseline in `results/trace_overhead_baseline.json` (a deliberately
//! loose bound: it catches "tracing made untraced runs slow", not CI
//! machine jitter). The same gate covers the disarmed-failpoint check
//! rate: fault-injection sites are compiled into every durability
//! boundary, and this proves they cost nothing while no faults are
//! armed.

use dcn_bench::parse_cli;
use dcn_core::{paper_networks, Routing, Scale};
use dcn_json::Json;
use dcn_sim::{
    CountingTracer, JsonlTracer, SharedBuf, SimConfig, Simulator, Telemetry, Tracer,
    DEFAULT_SAMPLE_EVERY_NS, MS, SEC,
};
use dcn_workloads::{generate_flows, AllToAll, PFabricWebSearch};

const BASELINE: &str = "trace_overhead_baseline.json";

/// One full experiment; returns (events processed, wall seconds).
fn run_once(
    tracer: Option<Box<dyn Tracer>>,
    telemetry: bool,
    wall_counters: bool,
    seed: u64,
) -> (u64, f64) {
    let pair = paper_networks(Scale::Tiny, seed);
    let xp = &pair.xpander;
    let pattern = AllToAll::new(xp, xp.tors_with_servers());
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 2000.0, 0.02, seed);
    let cfg = if wall_counters {
        SimConfig::default().with_wall_counters()
    } else {
        SimConfig::default()
    };
    let mut sim = Simulator::new(xp, Routing::PAPER_HYB.selector(xp), cfg);
    sim.set_window(0, 10 * MS);
    sim.inject(&flows);
    if let Some(t) = tracer {
        sim.set_tracer(t);
    }
    if telemetry {
        sim.set_telemetry(Telemetry::new(
            Box::new(SharedBuf::new()),
            DEFAULT_SAMPLE_EVERY_NS,
        ));
    }
    let t0 = std::time::Instant::now();
    sim.run(20 * SEC);
    (sim.events_processed(), t0.elapsed().as_secs_f64())
}

/// Disarmed-failpoint check throughput (checks/s): the price every
/// durability boundary pays when no faults are armed. The whole point of
/// the registry design is that this is one relaxed atomic load, so the
/// rate should sit within a small factor of raw memory-load throughput —
/// the `--check` gate proves "failpoints compiled in but off" costs
/// nothing measurable.
fn failpoint_rate(reps: u32) -> f64 {
    dcn_core::failpoint::disarm_all();
    const ITERS: u64 = 50_000_000;
    let mut best = 0.0f64;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let mut trips = 0u64;
        for _ in 0..ITERS {
            if std::hint::black_box(dcn_core::failpoint::check("fsio.tmp_write")).is_some() {
                trips += 1;
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        assert_eq!(trips, 0, "disarmed failpoint tripped");
        best = best.max(ITERS as f64 / secs);
    }
    best
}

/// Best-of-`reps` event rate (events/s) for one observability
/// configuration.
fn rate(
    reps: u32,
    seed: u64,
    telemetry: bool,
    wall_counters: bool,
    mk: impl Fn() -> Option<Box<dyn Tracer>>,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..reps {
        let (events, secs) = run_once(mk(), telemetry, wall_counters, seed);
        best = best.max(events as f64 / secs);
    }
    best
}

fn main() {
    let cli = parse_cli();
    let dir = cli.out_dir.clone().unwrap_or_else(|| "results".to_string());
    let path = format!("{dir}/{BASELINE}");

    let nop = rate(3, cli.seed, false, false, || None);
    let counting = rate(3, cli.seed, false, false, || {
        Some(Box::new(CountingTracer::new()))
    });
    let jsonl = rate(3, cli.seed, false, false, || {
        Some(Box::new(JsonlTracer::new(SharedBuf::new())))
    });
    // Informational only — the --check gate stays on the nop rate. The
    // nop configuration runs with the default SimConfig, where the
    // wall-clock counter set is off: its floor is therefore also the
    // "counters are free when disabled" gate (the deterministic counter
    // set is always on and priced into nop itself).
    let telemetry = rate(3, cli.seed, true, false, || None);
    let wall_counters = rate(3, cli.seed, false, true, || None);
    let failpoint = failpoint_rate(3);

    println!("tracer\tevents_per_sec");
    println!("nop\t{nop:.0}");
    println!("counting\t{counting:.0}");
    println!("jsonl\t{jsonl:.0}");
    println!("telemetry\t{telemetry:.0}");
    println!("wall_counters\t{wall_counters:.0}");
    println!("failpoint_checks\t{failpoint:.0}");

    if cli.has_flag("bless") {
        std::fs::create_dir_all(&dir).expect("create results dir");
        let report = Json::obj(vec![
            ("nop_events_per_sec", Json::from(nop.round() as u64)),
            (
                "counting_events_per_sec",
                Json::from(counting.round() as u64),
            ),
            ("jsonl_events_per_sec", Json::from(jsonl.round() as u64)),
            (
                "failpoint_checks_per_sec",
                Json::from(failpoint.round() as u64),
            ),
        ]);
        dcn_core::write_atomic(&path, report.pretty().as_bytes()).expect("write baseline");
        eprintln!("blessed {path}");
    } else if cli.has_flag("check") {
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {path}: {e} (run with --bless first)"));
        let v = Json::parse(&body).unwrap_or_else(|e| panic!("parse {path}: {e}"));
        let base = v
            .get("nop_events_per_sec")
            .and_then(|x| x.as_f64())
            .unwrap_or_else(|| panic!("{path}: missing nop_events_per_sec"));
        let floor = 0.5 * base;
        assert!(
            nop >= floor,
            "untraced simulator regressed: {nop:.0} events/s < half the blessed \
             baseline {base:.0} (floor {floor:.0}) — tracing must stay free when off"
        );
        eprintln!("ok: nop {nop:.0} events/s >= floor {floor:.0} (baseline {base:.0})");
        // Same loose half-the-baseline bound for the disarmed-failpoint
        // fast path; tolerated absent in pre-failpoint baselines so an
        // old blessed file does not break --check.
        if let Some(fp_base) = v.get("failpoint_checks_per_sec").and_then(|x| x.as_f64()) {
            let fp_floor = 0.5 * fp_base;
            assert!(
                failpoint >= fp_floor,
                "disarmed failpoint check regressed: {failpoint:.0} checks/s < half the \
                 blessed baseline {fp_base:.0} (floor {fp_floor:.0}) — failpoints must \
                 stay free when off"
            );
            eprintln!(
                "ok: disarmed failpoint {failpoint:.0} checks/s >= floor {fp_floor:.0} \
                 (baseline {fp_base:.0})"
            );
        }
    }
}
