//! Fig 11: Permute(0.31) with the aggregate flow arrival rate on the
//! x-axis, including the oversubscribed "77%-fat-tree". Xpander + HYB
//! tracks the full-bandwidth fat-tree; the cheap fat-tree deteriorates
//! much earlier.

use dcn_bench::{fct_point, packet_setup, parse_cli, rate_sweep, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_topology::fattree::FatTree;
use dcn_workloads::{active_racks_for_servers, PFabricWebSearch, Permutation};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let ft77_cfg = FatTree::at_cost_fraction(pair.ft_config.k, 0.78);
    let ft77 = ft77_cfg.build();
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);

    let total_servers = pair.fat_tree.num_servers() as u32;
    let n_active = (total_servers as f64 * 0.31).round() as u32;
    // Paper: λ up to 120K over 1024 servers ≈ 117/server/s (all servers).
    let rates = rate_sweep(117.0 * total_servers as f64, 6);

    let ft_racks = active_racks_for_servers(
        &pair.fat_tree,
        &pair.fat_tree.tors_with_servers(),
        n_active,
        false,
        cli.seed,
    );
    let xp_racks = active_racks_for_servers(
        &pair.xpander,
        &pair.xpander.tors_with_servers(),
        n_active,
        true,
        cli.seed,
    );
    // The 77% fat-tree has the same ToR layout indices for its first racks.
    let ft77_racks =
        active_racks_for_servers(&ft77, &ft77.tors_with_servers(), n_active, false, cli.seed);

    let mut a = Series::new(
        "fig11a_permute_load_avg_fct",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb", "fat_tree_77pct"],
    );
    let mut b = Series::new(
        "fig11b_permute_load_p99_short_fct",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb", "fat_tree_77pct"],
    );
    let mut c = Series::new(
        "fig11c_permute_load_long_tput",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb", "fat_tree_77pct"],
    );

    for &rate in &rates {
        eprintln!("λ = {rate}");
        let ft_pat = Permutation::new(&pair.fat_tree, ft_racks.clone(), cli.seed);
        let xp_pat = Permutation::new(&pair.xpander, xp_racks.clone(), cli.seed);
        let ft77_pat = Permutation::new(&ft77, ft77_racks.clone(), cli.seed);

        let ft = fct_point(
            &pair.fat_tree,
            Routing::Ecmp,
            SimConfig::default(),
            &ft_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        let ecmp = fct_point(
            &pair.xpander,
            Routing::Ecmp,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        let hyb = fct_point(
            &pair.xpander,
            Routing::PAPER_HYB,
            SimConfig::default(),
            &xp_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );
        let cheap = fct_point(
            &ft77,
            Routing::Ecmp,
            SimConfig::default(),
            &ft77_pat,
            &sizes,
            rate,
            setup,
            cli.seed,
        );

        a.push(
            rate,
            vec![
                ft.avg_fct_ms,
                ecmp.avg_fct_ms,
                hyb.avg_fct_ms,
                cheap.avg_fct_ms,
            ],
        );
        b.push(
            rate,
            vec![
                ft.p99_short_fct_ms,
                ecmp.p99_short_fct_ms,
                hyb.p99_short_fct_ms,
                cheap.p99_short_fct_ms,
            ],
        );
        c.push(
            rate,
            vec![
                ft.avg_long_tput_gbps,
                ecmp.avg_long_tput_gbps,
                hyb.avg_long_tput_gbps,
                cheap.avg_long_tput_gbps,
            ],
        );
    }
    a.finish(&cli);
    b.finish(&cli);
    c.finish(&cli);
}
