//! Ablation: the DCTCP ECN marking threshold K (the paper fixes 20 full
//! packets). Small K trims queues (lower tail latency, less throughput);
//! large K behaves like plain loss-based TCP.

use dcn_bench::{packet_setup, parse_cli, Series};
use dcn_core::{paper_networks, Routing};
use dcn_sim::SimConfig;
use dcn_workloads::{active_racks_for_servers, AllToAll, PFabricWebSearch};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let total = pair.fat_tree.num_servers() as u32;
    let n_active = (total as f64 * 0.5).round() as u32;
    let lambda = 167.0 * n_active as f64;

    let racks = active_racks_for_servers(
        &pair.xpander,
        &pair.xpander.tors_with_servers(),
        n_active,
        true,
        cli.seed,
    );

    let mut s = Series::new(
        "ablate_ecn",
        "ecn_k_pkts",
        &[
            "avg_fct_ms",
            "p99_short_fct_ms",
            "long_tput_gbps",
            "drops",
            "marks",
        ],
    );
    for &k in &[5u32, 10, 20, 40, 80] {
        eprintln!("K = {k}");
        let cfg = SimConfig {
            ecn_k_pkts: k,
            ..Default::default()
        };
        let pat = AllToAll::new(&pair.xpander, racks.clone());
        let flows = dcn_workloads::generate_flows(&pat, &sizes, lambda, setup.horizon_s, cli.seed);
        let (m, counters) = dcn_core::run_fct_experiment(
            &pair.xpander,
            Routing::PAPER_HYB,
            cfg,
            &flows,
            setup.window,
            setup.max_time,
        );
        s.push(
            k as f64,
            vec![
                m.avg_fct_ms,
                m.p99_short_fct_ms,
                m.avg_long_tput_gbps,
                counters.drops() as f64,
                counters.ecn_marks as f64,
            ],
        );
    }
    s.finish(&cli);
}
