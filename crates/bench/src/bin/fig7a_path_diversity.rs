//! Fig 7a: why ECMP fails between directly connected ToRs in an expander —
//! the only shortest path is the direct link, although many barely-longer
//! loopless paths exist. Audits first-hop ECMP diversity and k-shortest
//! path lengths for adjacent and non-adjacent ToR pairs.

use dcn_bench::{parse_cli, Series};
use dcn_core::{paper_networks, Scale};
use dcn_routing::{k_shortest_paths, EcmpTable};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(
        if cli.scale == Scale::Paper {
            Scale::Paper
        } else {
            Scale::Small
        },
        cli.seed,
    );
    let t = &pair.xpander;
    let table = EcmpTable::new(t);

    let mut s = Series::new(
        "fig7a_path_diversity",
        "pair_index",
        &[
            "adjacent",
            "hop_distance",
            "ecmp_first_hops",
            "ksp8_alternatives_within_plus2",
        ],
    );
    // Sample: the first 8 links give adjacent pairs; 8 distant pairs too.
    for i in 0..8u32 {
        let l = t.link(i);
        let paths = k_shortest_paths(t, l.a, l.b, 8);
        let short = paths[0].len();
        let alt = paths.iter().filter(|p| p.len() <= short + 2).count();
        s.push(
            i as f64,
            vec![
                1.0,
                table.distance(l.a, l.b) as f64,
                table.first_hop_diversity(l.a, l.b) as f64,
                alt as f64,
            ],
        );
    }
    let n = t.num_nodes() as u32;
    let mut idx = 8;
    for a in 0..n {
        if idx >= 16 {
            break;
        }
        for b in (a + 1)..n {
            if table.distance(a, b) >= 2 && !t.are_adjacent(a, b) {
                let paths = k_shortest_paths(t, a, b, 8);
                let short = paths[0].len();
                let alt = paths.iter().filter(|p| p.len() <= short + 2).count();
                s.push(
                    idx as f64,
                    vec![
                        0.0,
                        table.distance(a, b) as f64,
                        table.first_hop_diversity(a, b) as f64,
                        alt as f64,
                    ],
                );
                idx += 1;
                break;
            }
        }
    }
    s.finish(&cli);
}
