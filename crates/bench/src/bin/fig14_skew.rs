//! Fig 14: Skew(0.04, 0.77) — the paper's parametric simplification of
//! the ProjecToR traffic matrix (product-form rack weights) — on exactly
//! the Fig 13 networks. Results should be "largely similar" to Fig 13.

use dcn_bench::{fct_point, packet_setup, parse_cli, rate_sweep, Series};
use dcn_core::{paper_networks, Routing, Scale};
use dcn_sim::SimConfig;
use dcn_topology::xpander::Xpander;
use dcn_workloads::{PFabricWebSearch, Skew};

fn main() {
    let cli = parse_cli();
    let pair = paper_networks(cli.scale, cli.seed);
    let xp = match cli.scale {
        Scale::Tiny => Xpander::for_switches(3, 8, 2, cli.seed),
        Scale::Small => Xpander::for_switches(7, 32, 4, cli.seed),
        Scale::Paper => Xpander::paper_projector(cli.seed),
    }
    .build();
    let ft = &pair.fat_tree;

    let sizes = PFabricWebSearch::new();
    let setup = packet_setup(cli.scale);
    let servers = ft.num_servers() as f64;
    // Paper: up to 25K flow starts/s over 1024 servers.
    let rates = rate_sweep(24.4 * servers, 6);

    let mut a = Series::new(
        "fig14a_skew_avg_fct_unconstrained",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut b = Series::new(
        "fig14b_skew_p99_short_unconstrained",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );
    let mut c = Series::new(
        "fig14c_skew_avg_fct_constrained",
        "flow_starts_per_s",
        &["fat_tree", "xpander_ecmp", "xpander_hyb"],
    );

    let unconstrained = SimConfig::default().unconstrained_servers();
    let constrained = SimConfig::default();
    for &rate in &rates {
        eprintln!("λ = {rate}");
        let ft_pat = Skew::projector_like(ft, ft.tors_with_servers(), cli.seed);
        let xp_pat = Skew::projector_like(&xp, xp.tors_with_servers(), cli.seed);

        let run = |cfg: SimConfig| {
            let f = fct_point(
                ft,
                Routing::Ecmp,
                cfg,
                &ft_pat,
                &sizes,
                rate,
                setup,
                cli.seed,
            );
            let e = fct_point(
                &xp,
                Routing::Ecmp,
                cfg,
                &xp_pat,
                &sizes,
                rate,
                setup,
                cli.seed,
            );
            let h = fct_point(
                &xp,
                Routing::PAPER_HYB,
                cfg,
                &xp_pat,
                &sizes,
                rate,
                setup,
                cli.seed,
            );
            (f, e, h)
        };
        let (fu, eu, hu) = run(unconstrained);
        a.push(rate, vec![fu.avg_fct_ms, eu.avg_fct_ms, hu.avg_fct_ms]);
        b.push(
            rate,
            vec![
                fu.p99_short_fct_ms,
                eu.p99_short_fct_ms,
                hu.p99_short_fct_ms,
            ],
        );
        let (fc, ec, hc) = run(constrained);
        c.push(rate, vec![fc.avg_fct_ms, ec.avg_fct_ms, hc.avg_fct_ms]);
    }
    a.finish(&cli);
    b.finish(&cli);
    c.finish(&cli);
}
