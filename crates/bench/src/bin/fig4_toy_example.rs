//! Fig 4 / §4.1: the toy example. A statically-wired 54-switch network
//! gives 9 active racks full bandwidth; the *restricted* dynamic model is
//! upper-bounded at 80%; the unrestricted model reaches 100% only by
//! ignoring reconfiguration (90% at ProjecToR's duty cycle).

use dcn_bench::parse_cli;
use dcn_core::dynamicnet::{RestrictedDynamic, UnrestrictedDynamic};
use dcn_json::Json;
use dcn_maxflow::concurrent::{per_server_throughput, GkOptions};
use dcn_maxflow::dinic::topology_max_flow;
use dcn_topology::toy::ToyFig4;

fn main() {
    let cli = parse_cli();
    let net = ToyFig4::build();
    let t = &net.topology;

    // Rack-level permutation over the 9 active racks (a hard TM).
    let a = &net.active_tors;
    let pairs: Vec<(u32, u32)> = (0..9).map(|i| (a[i], a[(i + 3) % 9])).collect();
    let static_tp = per_server_throughput(
        t,
        &pairs,
        GkOptions {
            epsilon: 0.05,
            target: Some(1.0),
            gap: 0.03,
            max_phases: 2_000_000,
        },
    );

    // All-to-all across active racks in the direct-only network is what the
    // restricted dynamic model degenerates to.
    let restricted = RestrictedDynamic {
        net_ports: 6,
        servers: 6,
    }
    .throughput_bound(9);
    let unrestricted = UnrestrictedDynamic {
        net_ports: 6.0,
        servers: 6.0,
        duty_cycle: 1.0,
    };
    let duty = UnrestrictedDynamic {
        net_ports: 6.0,
        servers: 6.0,
        duty_cycle: 0.9,
    };

    // Max flow between two active racks as a sanity witness of full
    // bandwidth (6 servers ⇒ need 6 units).
    let witness = topology_max_flow(t, a[0], a[4]);

    println!("# fig4_toy_example");
    println!("metric\tvalue");
    println!("static_permutation_throughput\t{static_tp:.4}");
    println!("static_pair_max_flow_units\t{witness:.2}");
    println!("restricted_dynamic_bound\t{restricted:.4}");
    println!("unrestricted_dynamic\t{:.4}", unrestricted.throughput());
    println!("unrestricted_projector_duty\t{:.4}", duty.throughput());

    if let Some(dir) = &cli.out_dir {
        std::fs::create_dir_all(dir).expect("out dir");
        let body = Json::obj(vec![
            ("static_permutation_throughput", Json::from(static_tp)),
            ("static_pair_max_flow_units", Json::from(witness)),
            ("restricted_dynamic_bound", Json::from(restricted)),
            (
                "unrestricted_dynamic",
                Json::from(unrestricted.throughput()),
            ),
            ("unrestricted_projector_duty", Json::from(duty.throughput())),
        ]);
        dcn_core::write_atomic(
            format!("{dir}/fig4_toy_example.json"),
            body.pretty().as_bytes(),
        )
        .expect("write");
        eprintln!("wrote {dir}/fig4_toy_example.json");
    }
}
