//! Fig 8: the two flow-size distributions — pFabric web search
//! (mean ≈ 2.4 MB) and Pareto-HULL (mean ≈ 100 KB) — as CDFs, analytic
//! and empirical.

use dcn_bench::{parse_cli, Series};
use dcn_rng::Rng;
use dcn_workloads::{FlowSizeDist, PFabricWebSearch, ParetoHull};

fn empirical_cdf(d: &dyn FlowSizeDist, at: &[u64], n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut samples: Vec<u64> = (0..n).map(|_| d.sample(&mut rng)).collect();
    samples.sort_unstable();
    at.iter()
        .map(|&x| samples.partition_point(|&s| s <= x) as f64 / n as f64)
        .collect()
}

fn main() {
    let cli = parse_cli();
    let pf = PFabricWebSearch::new();
    let ph = ParetoHull::new();
    // Log-spaced sizes from 1 KB to 1 GB (the figure's x-range).
    let points: Vec<u64> = (0..=24)
        .map(|i| (1000.0 * 10f64.powf(i as f64 / 4.0)) as u64)
        .collect();
    let pf_emp = empirical_cdf(&pf, &points, 200_000, cli.seed);
    let ph_emp = empirical_cdf(&ph, &points, 200_000, cli.seed);

    let mut s = Series::new(
        "fig8_flow_size_cdfs",
        "flow_size_bytes",
        &[
            "pfabric_cdf",
            "pfabric_empirical",
            "pareto_hull_cdf",
            "pareto_hull_empirical",
        ],
    );
    for (i, &x) in points.iter().enumerate() {
        s.push(x as f64, vec![pf.cdf(x), pf_emp[i], ph.cdf(x), ph_emp[i]]);
    }
    s.finish(&cli);
    eprintln!(
        "pFabric mean: {:.0} bytes; Pareto-HULL mean: {:.0} bytes",
        pf.mean(),
        ph.mean()
    );
}
