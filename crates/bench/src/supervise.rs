//! Child-process supervision primitives for the `dcnrun` harness: a
//! wall-clock watchdog around one attempt, an exponential retry backoff,
//! and the exit-code taxonomy shared between the supervisor and its
//! workers.
//!
//! The supervisor/worker split exists so a crash — OOM kill, panic,
//! `SIGKILL` — loses at most one checkpoint interval of work: the
//! supervisor stays alive, notices the child's fate via [`run_attempt`],
//! and relaunches it with [`retry`] resuming from the last good
//! checkpoint. A *hung* child (live-locked, or stuck on I/O) is handled by
//! the same path: the watchdog kills it after `timeout` and reports
//! [`Attempt::TimedOut`].

use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Exit-code taxonomy. Workers exit with these; the supervisor's own exit
/// code is the worst outcome across its batch.
pub const EXIT_OK: i32 = 0;
/// The config is invalid — retrying cannot help.
pub const EXIT_CONFIG: i32 = 1;
/// The worker died (panic, signal, OOM): retry from the last checkpoint.
pub const EXIT_CRASH: i32 = 2;
/// The watchdog killed a hung worker.
pub const EXIT_TIMEOUT: i32 = 3;
/// A checkpoint failed to load (corrupt or mismatched) — the resume chain
/// is broken.
pub const EXIT_CKPT_CORRUPT: i32 = 4;

/// What happened to one supervised attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attempt {
    /// The child exited on its own with this code.
    Exited(i32),
    /// The child was killed by a signal (no exit code).
    Signaled,
    /// The watchdog killed the child at the wall-clock deadline.
    TimedOut,
}

impl Attempt {
    /// Whether another attempt could change the outcome: crashes and
    /// timeouts are retryable, success and config/checkpoint errors are
    /// final.
    pub fn retryable(self) -> bool {
        match self {
            Attempt::Exited(EXIT_OK)
            | Attempt::Exited(EXIT_CONFIG)
            | Attempt::Exited(EXIT_CKPT_CORRUPT) => false,
            Attempt::Exited(_) | Attempt::Signaled | Attempt::TimedOut => true,
        }
    }

    /// The supervisor-side exit code this attempt maps to.
    pub fn exit_code(self) -> i32 {
        match self {
            Attempt::Exited(c @ (EXIT_OK | EXIT_CONFIG | EXIT_CKPT_CORRUPT)) => c,
            Attempt::Exited(_) | Attempt::Signaled => EXIT_CRASH,
            Attempt::TimedOut => EXIT_TIMEOUT,
        }
    }
}

/// Outcome of a full supervised job: the final attempt plus how much
/// supervision it took to get there.
#[derive(Clone, Copy, Debug)]
pub struct JobOutcome {
    pub last: Attempt,
    /// Attempts launched (≥ 1).
    pub attempts: u32,
    pub wall: Duration,
}

impl JobOutcome {
    pub fn exit_code(&self) -> i32 {
        self.last.exit_code()
    }
}

/// Exponential backoff before retry `attempt` (0-based): `base · 2^attempt`,
/// capped at 10 s so a flaky long batch keeps making progress.
pub fn backoff(attempt: u32, base: Duration) -> Duration {
    let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
    base.saturating_mul(factor).min(Duration::from_secs(10))
}

/// Polling cadence for the watchdog loop. Coarse enough to cost nothing,
/// fine enough that a timeout lands within ~25 ms of the deadline.
const POLL: Duration = Duration::from_millis(25);

fn wait_outcome(child: &mut Child, timeout: Option<Duration>) -> std::io::Result<Attempt> {
    let deadline = timeout.map(|t| Instant::now() + t);
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(match status.code() {
                Some(c) => Attempt::Exited(c),
                None => Attempt::Signaled,
            });
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            child.kill()?;
            child.wait()?;
            return Ok(Attempt::TimedOut);
        }
        std::thread::sleep(POLL);
    }
}

/// Launches `cmd` and supervises it to completion: returns how the child
/// ended, killing it first if it outlives `timeout` (the hung-job
/// watchdog). `None` means no deadline.
pub fn run_attempt(cmd: &mut Command, timeout: Option<Duration>) -> std::io::Result<Attempt> {
    let mut child = cmd.spawn()?;
    wait_outcome(&mut child, timeout)
}

/// Full retry loop: launches the command built by `make_cmd(attempt)` up
/// to `1 + max_retries` times, backing off exponentially between
/// attempts, until an attempt is non-retryable (success, config error,
/// corrupt checkpoint) or the budget is spent. The builder sees the
/// attempt index so retries can add resume flags.
pub fn retry(
    mut make_cmd: impl FnMut(u32) -> Command,
    timeout: Option<Duration>,
    max_retries: u32,
    base_backoff: Duration,
) -> std::io::Result<JobOutcome> {
    let t0 = Instant::now();
    let mut attempt = 0;
    loop {
        let last = run_attempt(&mut make_cmd(attempt), timeout)?;
        attempt += 1;
        if !last.retryable() || attempt > max_retries {
            return Ok(JobOutcome {
                last,
                attempts: attempt,
                wall: t0.elapsed(),
            });
        }
        std::thread::sleep(backoff(attempt - 1, base_backoff));
    }
}

/// Work-stealing dispatch for a batch of independent indexed jobs.
///
/// `workers` OS threads share one take-a-number queue: an idle worker
/// claims the next undispatched index, runs `run(i)`, and comes back for
/// more — so job durations load-balance themselves with no up-front
/// partitioning. `run` returns `(result, keep_dispatching)`; returning
/// `false` stops the queue (the batch fail-fast), letting in-flight jobs
/// finish but dispatching nothing further.
///
/// Returns the completed `(index, result)` pairs **sorted by index** —
/// callers emit summaries in job order, independent of which worker
/// finished when — plus the indexes never dispatched, also in order.
pub fn run_queue<R: Send>(
    jobs: usize,
    workers: usize,
    run: impl Fn(usize) -> (R, bool) + Sync,
) -> (Vec<(usize, R)>, Vec<usize>) {
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(jobs));
    let workers = workers.clamp(1, jobs.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= jobs {
                    return;
                }
                let (r, keep_dispatching) = run(i);
                if !keep_dispatching {
                    stop.store(true, Ordering::SeqCst);
                }
                done.lock().unwrap().push((i, r));
            });
        }
    });
    let mut results = done.into_inner().unwrap();
    results.sort_by_key(|&(i, _)| i);
    let mut ran = vec![false; jobs];
    for &(i, _) in &results {
        ran[i] = true;
    }
    let skipped = (0..jobs).filter(|&i| !ran[i]).collect();
    (results, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut c = Command::new("sh");
        c.arg("-c").arg(script);
        c
    }

    #[test]
    fn clean_exit_is_reported() {
        let a = run_attempt(&mut sh("exit 0"), None).unwrap();
        assert_eq!(a, Attempt::Exited(0));
        assert_eq!(a.exit_code(), EXIT_OK);
        assert!(!a.retryable());
    }

    #[test]
    fn crash_codes_map_to_crash() {
        let a = run_attempt(&mut sh("exit 7"), None).unwrap();
        assert_eq!(a, Attempt::Exited(7));
        assert_eq!(a.exit_code(), EXIT_CRASH);
        assert!(a.retryable());
    }

    #[test]
    fn config_and_checkpoint_errors_are_final() {
        assert!(!Attempt::Exited(EXIT_CONFIG).retryable());
        assert_eq!(Attempt::Exited(EXIT_CONFIG).exit_code(), EXIT_CONFIG);
        assert!(!Attempt::Exited(EXIT_CKPT_CORRUPT).retryable());
        assert_eq!(
            Attempt::Exited(EXIT_CKPT_CORRUPT).exit_code(),
            EXIT_CKPT_CORRUPT
        );
    }

    #[test]
    fn watchdog_kills_a_hung_child() {
        let t0 = Instant::now();
        let a = run_attempt(&mut sh("sleep 30"), Some(Duration::from_millis(100))).unwrap();
        assert_eq!(a, Attempt::TimedOut);
        assert_eq!(a.exit_code(), EXIT_TIMEOUT);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "watchdog did not fire"
        );
    }

    #[test]
    fn sigkilled_child_is_a_crash() {
        // The shell kills itself with SIGKILL: no exit code.
        let a = run_attempt(&mut sh("kill -9 $$"), None).unwrap();
        assert_eq!(a, Attempt::Signaled);
        assert_eq!(a.exit_code(), EXIT_CRASH);
        assert!(a.retryable());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(100);
        assert_eq!(backoff(0, base), Duration::from_millis(100));
        assert_eq!(backoff(1, base), Duration::from_millis(200));
        assert_eq!(backoff(3, base), Duration::from_millis(800));
        assert_eq!(backoff(30, base), Duration::from_secs(10));
        assert_eq!(backoff(u32::MAX, base), Duration::from_secs(10));
    }

    #[test]
    fn retry_recovers_from_a_crash() {
        let marker = std::env::temp_dir().join(format!("supervise_retry_{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let script = format!(
            "test -f {m} && exit 0; touch {m}; exit 9",
            m = marker.display()
        );
        let out = retry(|_| sh(&script), None, 3, Duration::from_millis(1)).unwrap();
        assert_eq!(out.last, Attempt::Exited(0));
        assert_eq!(out.attempts, 2, "first attempt crashes, second succeeds");
        assert_eq!(out.exit_code(), EXIT_OK);
        let _ = std::fs::remove_file(&marker);
    }

    #[test]
    fn retry_budget_is_finite() {
        let out = retry(|_| sh("exit 9"), None, 2, Duration::from_millis(1)).unwrap();
        assert_eq!(out.attempts, 3, "initial + 2 retries");
        assert_eq!(out.exit_code(), EXIT_CRASH);
    }

    #[test]
    fn retry_stops_at_config_errors() {
        let out = retry(|_| sh("exit 1"), None, 5, Duration::from_millis(1)).unwrap();
        assert_eq!(out.attempts, 1, "config errors must not be retried");
        assert_eq!(out.exit_code(), EXIT_CONFIG);
    }

    #[test]
    fn run_queue_returns_results_in_job_order() {
        // Uneven job durations: later jobs finish first under parallelism,
        // yet results must come back index-ordered.
        let (results, skipped) = run_queue(8, 4, |i| {
            std::thread::sleep(Duration::from_millis((8 - i as u64) * 3));
            (i * 10, true)
        });
        assert_eq!(skipped, Vec::<usize>::new());
        let idx: Vec<usize> = results.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
        for &(i, r) in &results {
            assert_eq!(r, i * 10);
        }
    }

    #[test]
    fn run_queue_actually_runs_jobs_concurrently() {
        // Two jobs rendezvous: each waits (bounded) for the other to have
        // started. Only possible when both are in flight at once.
        let started = [AtomicUsize::new(0), AtomicUsize::new(0)];
        let (results, _) = run_queue(2, 2, |i| {
            started[i].store(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(5);
            while started[1 - i].load(Ordering::SeqCst) == 0 {
                assert!(Instant::now() < deadline, "peer job never started");
                std::thread::yield_now();
            }
            (i, true)
        });
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn run_queue_fail_fast_skips_undispatched_jobs() {
        // Single worker, job 1 pulls the plug: 2..6 are never dispatched.
        let (results, skipped) = run_queue(6, 1, |i| (i, i != 1));
        let idx: Vec<usize> = results.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1]);
        assert_eq!(skipped, vec![2, 3, 4, 5]);
    }

    #[test]
    fn run_queue_clamps_workers_and_handles_empty_batches() {
        let (results, skipped) = run_queue(3, 64, |i| (i, true));
        assert_eq!(results.len(), 3);
        assert!(skipped.is_empty());
        let (results, skipped) = run_queue(0, 4, |_| ((), true));
        assert!(results.is_empty());
        assert!(skipped.is_empty());
    }
}
