//! Child-process supervision primitives for the `dcnrun` harness: a
//! wall-clock watchdog around one attempt, an exponential retry backoff,
//! and the exit-code taxonomy shared between the supervisor and its
//! workers.
//!
//! The supervisor/worker split exists so a crash — OOM kill, panic,
//! `SIGKILL` — loses at most one checkpoint interval of work: the
//! supervisor stays alive, notices the child's fate via [`run_attempt`],
//! and relaunches it with [`retry`] resuming from the last good
//! checkpoint. A *hung* child (live-locked, or stuck on I/O) is handled by
//! the same path: the watchdog kills it after `timeout` and reports
//! [`Attempt::TimedOut`].

use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Exit-code taxonomy. Workers exit with these; the supervisor's own exit
/// code is the worst outcome across its batch.
pub const EXIT_OK: i32 = 0;
/// The config is invalid — retrying cannot help.
pub const EXIT_CONFIG: i32 = 1;
/// The worker died (panic, signal, OOM): retry from the last checkpoint.
pub const EXIT_CRASH: i32 = 2;
/// The watchdog killed a hung worker.
pub const EXIT_TIMEOUT: i32 = 3;
/// A checkpoint failed to load (corrupt or mismatched) — the resume chain
/// is broken.
pub const EXIT_CKPT_CORRUPT: i32 = 4;
/// The worker finished and its result is correct, but durable persistence
/// (checkpointing) was lost along the way — e.g. the checkpoint disk
/// filled. A success for the caller, a degraded-mode signal for the
/// supervisor: the run completed without crash protection.
pub const EXIT_OK_DEGRADED: i32 = 7;

/// What happened to one supervised attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attempt {
    /// The child exited on its own with this code.
    Exited(i32),
    /// The child was killed by a signal (no exit code).
    Signaled,
    /// The watchdog killed the child at the wall-clock deadline.
    TimedOut,
    /// The child could not even be launched (fork/exec failure — fd or
    /// PID exhaustion, a vanished binary). Transient on a loaded host,
    /// so retryable like a crash.
    SpawnFailed,
}

impl Attempt {
    /// Whether another attempt could change the outcome: crashes,
    /// timeouts, and spawn failures are retryable; success (degraded or
    /// not) and config/checkpoint errors are final.
    pub fn retryable(self) -> bool {
        match self {
            Attempt::Exited(EXIT_OK)
            | Attempt::Exited(EXIT_CONFIG)
            | Attempt::Exited(EXIT_CKPT_CORRUPT)
            | Attempt::Exited(EXIT_OK_DEGRADED) => false,
            Attempt::Exited(_) | Attempt::Signaled | Attempt::TimedOut | Attempt::SpawnFailed => {
                true
            }
        }
    }

    /// The supervisor-side exit code this attempt maps to. A degraded
    /// success is still a success — degradation is reported out-of-band
    /// (counters, logs), not through the batch exit code.
    pub fn exit_code(self) -> i32 {
        match self {
            Attempt::Exited(EXIT_OK_DEGRADED) => EXIT_OK,
            Attempt::Exited(c @ (EXIT_OK | EXIT_CONFIG | EXIT_CKPT_CORRUPT)) => c,
            Attempt::Exited(_) | Attempt::Signaled | Attempt::SpawnFailed => EXIT_CRASH,
            Attempt::TimedOut => EXIT_TIMEOUT,
        }
    }

    /// Whether this attempt is a success that lost durable persistence.
    pub fn degraded(self) -> bool {
        self == Attempt::Exited(EXIT_OK_DEGRADED)
    }
}

/// Outcome of a full supervised job: the final attempt plus how much
/// supervision it took to get there.
#[derive(Clone, Copy, Debug)]
pub struct JobOutcome {
    pub last: Attempt,
    /// Attempts launched (≥ 1).
    pub attempts: u32,
    pub wall: Duration,
}

impl JobOutcome {
    pub fn exit_code(&self) -> i32 {
        self.last.exit_code()
    }
}

/// Retry pacing shared by every supervisor in the stack (`dcnrun`
/// batches, `dcnserve` worker relaunches): exponential growth from
/// `base`, capped at `cap`, with **deterministic jitter** — each delay is
/// drawn into `[d/2, d)` by a splitmix64 hash of `(jitter_seed, attempt)`.
///
/// The jitter matters at the fleet level: when a shared dependency
/// hiccups, N clients whose workers died simultaneously would otherwise
/// all retry on the same doubling schedule and arrive as one thundering
/// herd, forever in phase. Seeding per job (e.g. by job index or cache
/// key) de-phases them while keeping every run bit-reproducible.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// First delay (before jitter).
    pub base: Duration,
    /// Upper bound on the un-jittered delay.
    pub cap: Duration,
    /// Seed for the jitter draw; same seed → same delays.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// The conventional policy: `base` growing to a 10 s cap, jitter
    /// stream 0.
    pub fn new(base: Duration) -> RetryPolicy {
        RetryPolicy {
            base,
            cap: Duration::from_secs(10),
            jitter_seed: 0,
        }
    }

    /// Same schedule shape, different jitter stream — give each job its
    /// own seed so coexisting retry loops de-phase.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.jitter_seed = seed;
        self
    }

    /// Delay before retry `attempt` (0-based): `base · 2^attempt` capped
    /// at `cap`, then jittered into `[d/2, d)`. Deterministic in
    /// `(jitter_seed, attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        let d = self.base.saturating_mul(factor).min(self.cap);
        let nanos = d.as_nanos() as u64;
        if nanos < 2 {
            return d;
        }
        let mut s = self.jitter_seed ^ (u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let draw = dcn_rng::splitmix64(&mut s);
        let half = nanos / 2;
        Duration::from_nanos(half + draw % (nanos - half))
    }
}

/// Polling cadence for the watchdog loop. Coarse enough to cost nothing,
/// fine enough that a timeout lands within ~25 ms of the deadline.
const POLL: Duration = Duration::from_millis(25);

fn wait_outcome(child: &mut Child, timeout: Option<Duration>) -> std::io::Result<Attempt> {
    let deadline = timeout.map(|t| Instant::now() + t);
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(match status.code() {
                Some(c) => Attempt::Exited(c),
                None => Attempt::Signaled,
            });
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            child.kill()?;
            child.wait()?;
            return Ok(Attempt::TimedOut);
        }
        std::thread::sleep(POLL);
    }
}

/// Launches `cmd` and supervises it to completion: returns how the child
/// ended, killing it first if it outlives `timeout` (the hung-job
/// watchdog). `None` means no deadline. A failed `spawn` — including one
/// injected through the `supervise.spawn` failpoint — is
/// [`Attempt::SpawnFailed`], an outcome like any other, so retry loops
/// treat it as transient instead of aborting the whole job.
pub fn run_attempt(cmd: &mut Command, timeout: Option<Duration>) -> std::io::Result<Attempt> {
    let mut child = match dcn_core::failpoint::fail_io("supervise.spawn").and_then(|()| cmd.spawn())
    {
        Ok(c) => c,
        Err(_) => return Ok(Attempt::SpawnFailed),
    };
    wait_outcome(&mut child, timeout)
}

/// Full retry loop: launches the command built by `make_cmd(attempt)` up
/// to `1 + max_retries` times, pacing attempts by `policy`, until an
/// attempt is non-retryable (success, config error, corrupt checkpoint)
/// or the budget is spent. The builder sees the attempt index so retries
/// can add resume flags.
pub fn retry(
    mut make_cmd: impl FnMut(u32) -> Command,
    timeout: Option<Duration>,
    max_retries: u32,
    policy: RetryPolicy,
) -> std::io::Result<JobOutcome> {
    let t0 = Instant::now();
    let mut attempt = 0;
    loop {
        let last = run_attempt(&mut make_cmd(attempt), timeout)?;
        attempt += 1;
        if !last.retryable() || attempt > max_retries {
            return Ok(JobOutcome {
                last,
                attempts: attempt,
                wall: t0.elapsed(),
            });
        }
        std::thread::sleep(policy.delay(attempt - 1));
    }
}

/// Work-stealing dispatch for a batch of independent indexed jobs.
///
/// `workers` OS threads share one take-a-number queue: an idle worker
/// claims the next undispatched index, runs `run(i)`, and comes back for
/// more — so job durations load-balance themselves with no up-front
/// partitioning. `run` returns `(result, keep_dispatching)`; returning
/// `false` stops the queue (the batch fail-fast), letting in-flight jobs
/// finish but dispatching nothing further.
///
/// Returns the completed `(index, result)` pairs **sorted by index** —
/// callers emit summaries in job order, independent of which worker
/// finished when — plus the indexes never dispatched, also in order.
pub fn run_queue<R: Send>(
    jobs: usize,
    workers: usize,
    run: impl Fn(usize) -> (R, bool) + Sync,
) -> (Vec<(usize, R)>, Vec<usize>) {
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(jobs));
    let workers = workers.clamp(1, jobs.max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= jobs {
                    return;
                }
                let (r, keep_dispatching) = run(i);
                if !keep_dispatching {
                    stop.store(true, Ordering::SeqCst);
                }
                done.lock().unwrap().push((i, r));
            });
        }
    });
    let mut results = done.into_inner().unwrap();
    results.sort_by_key(|&(i, _)| i);
    let mut ran = vec![false; jobs];
    for &(i, _) in &results {
        ran[i] = true;
    }
    let skipped = (0..jobs).filter(|&i| !ran[i]).collect();
    (results, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut c = Command::new("sh");
        c.arg("-c").arg(script);
        c
    }

    #[test]
    fn clean_exit_is_reported() {
        let a = run_attempt(&mut sh("exit 0"), None).unwrap();
        assert_eq!(a, Attempt::Exited(0));
        assert_eq!(a.exit_code(), EXIT_OK);
        assert!(!a.retryable());
    }

    #[test]
    fn crash_codes_map_to_crash() {
        let a = run_attempt(&mut sh("exit 9"), None).unwrap();
        assert_eq!(a, Attempt::Exited(9));
        assert_eq!(a.exit_code(), EXIT_CRASH);
        assert!(a.retryable());
    }

    #[test]
    fn degraded_success_is_success_not_retryable() {
        let a = run_attempt(&mut sh("exit 7"), None).unwrap();
        assert_eq!(a, Attempt::Exited(EXIT_OK_DEGRADED));
        assert!(a.degraded());
        assert!(
            !a.retryable(),
            "the result is correct; retrying wastes work"
        );
        assert_eq!(
            a.exit_code(),
            EXIT_OK,
            "degradation is out-of-band, not an error"
        );
        assert!(!Attempt::Exited(EXIT_OK).degraded());
    }

    #[test]
    fn spawn_failure_is_a_retryable_outcome_not_an_error() {
        let a = run_attempt(&mut Command::new("/no/such/binary/anywhere"), None).unwrap();
        assert_eq!(a, Attempt::SpawnFailed);
        assert!(a.retryable());
        assert_eq!(a.exit_code(), EXIT_CRASH);
    }

    #[test]
    fn injected_spawn_failure_retries_to_success() {
        dcn_core::failpoint::configure("supervise.spawn", "2*err");
        let out = retry(
            |_| sh("exit 0"),
            None,
            3,
            RetryPolicy::new(Duration::from_millis(1)),
        )
        .unwrap();
        dcn_core::failpoint::disarm("supervise.spawn");
        assert_eq!(out.last, Attempt::Exited(0));
        assert_eq!(out.attempts, 3, "two injected spawn failures, then success");
    }

    #[test]
    fn config_and_checkpoint_errors_are_final() {
        assert!(!Attempt::Exited(EXIT_CONFIG).retryable());
        assert_eq!(Attempt::Exited(EXIT_CONFIG).exit_code(), EXIT_CONFIG);
        assert!(!Attempt::Exited(EXIT_CKPT_CORRUPT).retryable());
        assert_eq!(
            Attempt::Exited(EXIT_CKPT_CORRUPT).exit_code(),
            EXIT_CKPT_CORRUPT
        );
    }

    #[test]
    fn watchdog_kills_a_hung_child() {
        let t0 = Instant::now();
        let a = run_attempt(&mut sh("sleep 30"), Some(Duration::from_millis(100))).unwrap();
        assert_eq!(a, Attempt::TimedOut);
        assert_eq!(a.exit_code(), EXIT_TIMEOUT);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "watchdog did not fire"
        );
    }

    #[test]
    fn sigkilled_child_is_a_crash() {
        // The shell kills itself with SIGKILL: no exit code.
        let a = run_attempt(&mut sh("kill -9 $$"), None).unwrap();
        assert_eq!(a, Attempt::Signaled);
        assert_eq!(a.exit_code(), EXIT_CRASH);
        assert!(a.retryable());
    }

    #[test]
    fn retry_policy_doubles_caps_and_jitters_within_bounds() {
        let p = RetryPolicy::new(Duration::from_millis(100));
        // Un-jittered schedule: 100, 200, 400, ..., capped at 10 s. Each
        // jittered delay lands in [d/2, d).
        for (attempt, ms) in [(0u32, 100u64), (1, 200), (3, 800), (30, 10_000)] {
            let d = p.delay(attempt);
            let lo = Duration::from_millis(ms / 2);
            let hi = Duration::from_millis(ms);
            assert!(
                d >= lo && d < hi,
                "attempt {attempt}: {d:?} outside [{lo:?}, {hi:?})"
            );
        }
        assert!(p.delay(u32::MAX) < Duration::from_secs(10));
    }

    #[test]
    fn retry_policy_jitter_is_deterministic_and_seed_dependent() {
        let base = RetryPolicy::new(Duration::from_millis(100));
        let a: Vec<_> = (0..8).map(|i| base.with_seed(7).delay(i)).collect();
        let b: Vec<_> = (0..8).map(|i| base.with_seed(7).delay(i)).collect();
        let c: Vec<_> = (0..8).map(|i| base.with_seed(8).delay(i)).collect();
        assert_eq!(a, b, "same seed must replay the same delays");
        assert_ne!(a, c, "different seeds must de-phase (anti-thundering-herd)");
    }

    #[test]
    fn retry_policy_handles_degenerate_bases() {
        // Zero and one-nanosecond bases must not divide by zero or panic.
        let p = RetryPolicy::new(Duration::ZERO);
        assert_eq!(p.delay(0), Duration::ZERO);
        let p = RetryPolicy::new(Duration::from_nanos(1));
        assert!(p.delay(0) <= Duration::from_nanos(1));
    }

    #[test]
    fn retry_recovers_from_a_crash() {
        let marker = std::env::temp_dir().join(format!("supervise_retry_{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let script = format!(
            "test -f {m} && exit 0; touch {m}; exit 9",
            m = marker.display()
        );
        let out = retry(
            |_| sh(&script),
            None,
            3,
            RetryPolicy::new(Duration::from_millis(1)),
        )
        .unwrap();
        assert_eq!(out.last, Attempt::Exited(0));
        assert_eq!(out.attempts, 2, "first attempt crashes, second succeeds");
        assert_eq!(out.exit_code(), EXIT_OK);
        let _ = std::fs::remove_file(&marker);
    }

    #[test]
    fn retry_budget_is_finite() {
        let out = retry(
            |_| sh("exit 9"),
            None,
            2,
            RetryPolicy::new(Duration::from_millis(1)),
        )
        .unwrap();
        assert_eq!(out.attempts, 3, "initial + 2 retries");
        assert_eq!(out.exit_code(), EXIT_CRASH);
    }

    #[test]
    fn retry_stops_at_config_errors() {
        let out = retry(
            |_| sh("exit 1"),
            None,
            5,
            RetryPolicy::new(Duration::from_millis(1)),
        )
        .unwrap();
        assert_eq!(out.attempts, 1, "config errors must not be retried");
        assert_eq!(out.exit_code(), EXIT_CONFIG);
    }

    #[test]
    fn run_queue_returns_results_in_job_order() {
        // Uneven job durations: later jobs finish first under parallelism,
        // yet results must come back index-ordered.
        let (results, skipped) = run_queue(8, 4, |i| {
            std::thread::sleep(Duration::from_millis((8 - i as u64) * 3));
            (i * 10, true)
        });
        assert_eq!(skipped, Vec::<usize>::new());
        let idx: Vec<usize> = results.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
        for &(i, r) in &results {
            assert_eq!(r, i * 10);
        }
    }

    #[test]
    fn run_queue_actually_runs_jobs_concurrently() {
        // Two jobs rendezvous: each waits (bounded) for the other to have
        // started. Only possible when both are in flight at once.
        let started = [AtomicUsize::new(0), AtomicUsize::new(0)];
        let (results, _) = run_queue(2, 2, |i| {
            started[i].store(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(5);
            while started[1 - i].load(Ordering::SeqCst) == 0 {
                assert!(Instant::now() < deadline, "peer job never started");
                std::thread::yield_now();
            }
            (i, true)
        });
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn run_queue_fail_fast_skips_undispatched_jobs() {
        // Single worker, job 1 pulls the plug: 2..6 are never dispatched.
        let (results, skipped) = run_queue(6, 1, |i| (i, i != 1));
        let idx: Vec<usize> = results.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1]);
        assert_eq!(skipped, vec![2, 3, 4, 5]);
    }

    #[test]
    fn run_queue_clamps_workers_and_handles_empty_batches() {
        let (results, skipped) = run_queue(3, 64, |i| (i, true));
        assert_eq!(results.len(), 3);
        assert!(skipped.is_empty());
        let (results, skipped) = run_queue(0, 4, |_| ((), true));
        assert!(results.is_empty());
        assert!(skipped.is_empty());
    }
}
