//! The engine performance suite behind `bench perf` and the committed
//! `BENCH_sim.json` baseline.
//!
//! Each case runs one deterministic packet-level experiment (a transport
//! on a fat-tree size) and records two kinds of fields:
//!
//! - **simulated** — flow counts, events processed, drops, queue peak,
//!   and the engine's deterministic self-observability counters (epochs,
//!   cross-shard packets, calendar spills/fallbacks, arena high-water,
//!   per-shard event extremes). Same binary, same seed ⇒ byte-identical
//!   values; `--check` compares them exactly, so an accidental behavior
//!   change in the hot path fails CI even if it is *faster*.
//! - **wall-clock** — `wall_ms` and `events_per_sec_wall`, segregated in
//!   [`PERF_WALL_CLOCK_FIELDS`] exactly like `RunManifest`'s wall fields.
//!   `--check` only asserts a loose floor (half the blessed rate), which
//!   catches "the engine got slow" without tripping on CI machine jitter.
//!
//! The committed baseline at the repo root is the start of the perf
//! trajectory ROADMAP item 1 calls for: re-bless with
//! `bench perf --bless` after a deliberate engine change and the diff
//! shows up in review next to the code that caused it.

use dcn_json::Json;
use dcn_routing::RoutingSuite;
use dcn_sim::{compute_metrics, SimConfig, Simulator, MS, SEC};
use dcn_topology::fattree::FatTree;
use dcn_workloads::{fsize::PFabricWebSearch, generate_flows, tm::AllToAll};

/// Schema tag every `BENCH_sim.json` leads with.
pub const PERF_SCHEMA: &str = "dcn-bench-perf-v1";

/// Per-case fields that legitimately differ between two runs of the same
/// binary: wall-clock measurements. Everything else is simulated and must
/// be byte-identical. (`RunManifest` keeps the same split in
/// `dcn_core::WALL_CLOCK_FIELDS`.)
pub const PERF_WALL_CLOCK_FIELDS: &[&str] = &["wall_ms", "events_per_sec_wall"];

/// `--check` fails when a case's measured rate drops below this fraction
/// of the blessed baseline.
pub const PERF_RATE_FLOOR: f64 = 0.5;

/// One experiment of the suite: a transport on a fat-tree size, loaded
/// enough that the hot path (not setup) dominates.
struct Case {
    topology: &'static str,
    transport: &'static str,
    k: u32,
    /// Flow arrivals per second across all servers.
    lambda: f64,
    /// Arrival window length (seconds); measurement window matches.
    span_s: f64,
    /// Worker threads for the sharded engine. Simulated fields are
    /// byte-identical at every setting; only wall-clock fields may move.
    threads: u32,
}

const fn case(
    topology: &'static str,
    transport: &'static str,
    k: u32,
    lambda: f64,
    span_s: f64,
    threads: u32,
) -> Case {
    Case {
        topology,
        transport,
        k,
        lambda,
        span_s,
        threads,
    }
}

const CASES: &[Case] = &[
    case("fat_tree_k4", "dctcp", 4, 16_000.0, 0.05, 1),
    case("fat_tree_k4", "newreno", 4, 16_000.0, 0.05, 1),
    case("fat_tree_k4", "pfabric", 4, 16_000.0, 0.05, 1),
    // The k=8 dctcp probe doubles as the shard-scaling series: the same
    // experiment at 1/2/4/8 worker threads. `--check` asserts the
    // simulated fields of all four rows are identical (byte-stable
    // parallelism), while the wall-clock columns record how the engine
    // scales on the bless machine.
    case("fat_tree_k8", "dctcp", 8, 21_376.0, 0.03, 1),
    case("fat_tree_k8", "dctcp", 8, 21_376.0, 0.03, 2),
    case("fat_tree_k8", "dctcp", 8, 21_376.0, 0.03, 4),
    case("fat_tree_k8", "dctcp", 8, 21_376.0, 0.03, 8),
    case("fat_tree_k8", "newreno", 8, 21_376.0, 0.03, 1),
    case("fat_tree_k8", "pfabric", 8, 21_376.0, 0.03, 1),
];

fn config_for(transport: &str) -> SimConfig {
    match transport {
        "dctcp" => SimConfig::default(),
        "newreno" => SimConfig::default().with_newreno(),
        "pfabric" => SimConfig::default().with_pfabric(),
        other => panic!("unknown transport {other}"),
    }
}

/// Runs one case and returns its report row (simulated fields first,
/// wall-clock fields last).
fn run_case(c: &Case, seed: u64) -> Json {
    let t = FatTree::full(c.k).build();
    let suite = RoutingSuite::new(&t);
    let cfg = config_for(c.transport).with_threads(c.threads);
    let mut sim = Simulator::new(&t, Box::new(suite.ecmp()), cfg);
    let pattern = AllToAll::new(&t, t.tors_with_servers());
    let flows = generate_flows(&pattern, &PFabricWebSearch::new(), c.lambda, c.span_s, seed);
    let warmup = 2 * MS;
    let end = warmup + (c.span_s * 1e9) as u64;
    sim.set_window(warmup, end);
    sim.inject(&flows);
    let t0 = std::time::Instant::now();
    let rec = sim.run(20 * SEC);
    let wall = t0.elapsed();
    let m = compute_metrics(&rec, warmup, end);
    let rate = sim.events_processed() as f64 / wall.as_secs_f64();
    // The engine's deterministic self-observability counters are report
    // columns too: they are simulated fields, so --check compares them
    // exactly and check_thread_invariance proves they are byte-identical
    // across the shard-scaling series.
    let eng = sim.engine_counters();
    let shard_events_max = eng.shards.iter().map(|s| s.events).max().unwrap_or(0);
    let shard_events_min = eng.shards.iter().map(|s| s.events).min().unwrap_or(0);
    Json::obj(vec![
        ("topology", Json::from(c.topology)),
        ("transport", Json::from(c.transport)),
        ("threads", Json::from(c.threads as u64)),
        ("seed", Json::from(seed)),
        ("flows", Json::from(flows.len())),
        ("completed", Json::from(m.completed)),
        ("events", Json::from(sim.events_processed())),
        ("drops", Json::from(sim.total_drops())),
        ("queue_peak", Json::from(sim.heap_peak())),
        ("epochs", Json::from(eng.epochs)),
        ("merge_ties", Json::from(eng.merge_ties)),
        ("xshard_pkts", Json::from(eng.cross_shard_total())),
        (
            "ladder_spills",
            Json::from(eng.shards.iter().map(|s| s.ladder_spills).sum::<u64>()),
        ),
        (
            "scatter_fallbacks",
            Json::from(eng.shards.iter().map(|s| s.scatter_fallbacks).sum::<u64>()),
        ),
        (
            "calendar_peak_max",
            Json::from(
                eng.shards
                    .iter()
                    .map(|s| s.calendar_peak)
                    .max()
                    .unwrap_or(0),
            ),
        ),
        (
            "arena_hwm",
            Json::from(eng.shards.iter().map(|s| s.arena_high_water).sum::<u64>()),
        ),
        ("shard_events_max", Json::from(shard_events_max)),
        ("shard_events_min", Json::from(shard_events_min)),
        ("wall_ms", Json::from(wall.as_millis() as u64)),
        ("events_per_sec_wall", Json::from(rate.round() as u64)),
    ])
}

/// Runs every case of the suite; the returned document is what `--bless`
/// commits as `BENCH_sim.json`.
pub fn run_perf_suite(seed: u64) -> Json {
    let cases: Vec<Json> = CASES.iter().map(|c| run_case(c, seed)).collect();
    Json::obj(vec![
        ("schema", Json::from(PERF_SCHEMA)),
        ("cases", Json::Arr(cases)),
    ])
}

/// A case's wall-clock event rate.
pub fn case_rate(case: &Json) -> Option<f64> {
    case.get("events_per_sec_wall").and_then(|v| v.as_f64())
}

/// The `(topology, transport, threads)` label of a case row.
pub fn case_label(case: &Json) -> String {
    let t = case.get("topology").and_then(|v| v.as_str()).unwrap_or("?");
    let x = case
        .get("transport")
        .and_then(|v| v.as_str())
        .unwrap_or("?");
    let n = case.get("threads").and_then(|v| v.as_u64()).unwrap_or(1);
    format!("{t}/{x}/t{n}")
}

/// The parallel-engine contract, asserted inside the suite itself: rows
/// that differ *only* in `threads` (the shard-scaling series) must agree
/// on every simulated field. A divergence means the sharded schedule
/// changed the simulation — exactly the bug class the engine promises
/// away — so it fails even on a fresh `--bless`.
pub fn check_thread_invariance(doc: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    let cases = doc.get("cases").and_then(|c| c.as_array()).unwrap_or(&[]);
    for (i, a) in cases.iter().enumerate() {
        for b in &cases[i + 1..] {
            let same_exp = a.get("topology") == b.get("topology")
                && a.get("transport") == b.get("transport")
                && a.get("seed") == b.get("seed");
            if !same_exp || a.get("threads") == b.get("threads") {
                continue;
            }
            let (Some(af), Some(bf)) = (a.as_object(), b.as_object()) else {
                continue;
            };
            for (key, av) in af {
                if key == "threads" || PERF_WALL_CLOCK_FIELDS.contains(&key.as_str()) {
                    continue;
                }
                match bf.iter().find(|(k, _)| k == key) {
                    Some((_, bv)) if av == bv => {}
                    _ => errs.push(format!(
                        "{} vs {}: simulated field \"{key}\" depends on thread count \
                         ({av} vs {})",
                        case_label(a),
                        case_label(b),
                        bf.iter()
                            .find(|(k, _)| k == key)
                            .map(|(_, v)| v.to_string())
                            .unwrap_or_else(|| "missing".into()),
                    )),
                }
            }
        }
    }
    errs
}

/// Compares a fresh run against the blessed baseline: every simulated
/// field must match exactly; every wall-clock rate must clear
/// [`PERF_RATE_FLOOR`]. Returns human-readable failures (empty = pass).
pub fn check_perf(current: &Json, baseline: &Json) -> Vec<String> {
    let mut errs = Vec::new();
    for doc in [current, baseline] {
        if doc.get("schema").and_then(|s| s.as_str()) != Some(PERF_SCHEMA) {
            errs.push(format!("schema tag is not {PERF_SCHEMA}"));
            return errs;
        }
    }
    errs.extend(check_thread_invariance(current));
    let cur = current
        .get("cases")
        .and_then(|c| c.as_array())
        .unwrap_or(&[]);
    let base = baseline
        .get("cases")
        .and_then(|c| c.as_array())
        .unwrap_or(&[]);
    if cur.len() != base.len() {
        errs.push(format!(
            "case count mismatch: {} now vs {} blessed (re-bless after changing the suite)",
            cur.len(),
            base.len()
        ));
        return errs;
    }
    for (c, b) in cur.iter().zip(base) {
        let label = case_label(b);
        let (Some(cf), Some(bf)) = (c.as_object(), b.as_object()) else {
            errs.push(format!("{label}: malformed case row"));
            continue;
        };
        for (key, bv) in bf {
            if PERF_WALL_CLOCK_FIELDS.contains(&key.as_str()) {
                continue;
            }
            match cf.iter().find(|(k, _)| k == key) {
                Some((_, cv)) if cv == bv => {}
                Some((_, cv)) => errs.push(format!(
                    "{label}: simulated field \"{key}\" drifted: {cv} vs blessed {bv}"
                )),
                None => errs.push(format!("{label}: simulated field \"{key}\" missing")),
            }
        }
        if let (Some(cr), Some(br)) = (case_rate(c), case_rate(b)) {
            let floor = PERF_RATE_FLOOR * br;
            if cr < floor {
                errs.push(format!(
                    "{label}: engine regressed: {cr:.0} events/s < floor {floor:.0} \
                     ({:.0}% of blessed {br:.0})",
                    100.0 * PERF_RATE_FLOOR
                ));
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(events: u64, rate: u64) -> Json {
        Json::obj(vec![
            ("schema", Json::from(PERF_SCHEMA)),
            (
                "cases",
                Json::Arr(vec![Json::obj(vec![
                    ("topology", Json::from("fat_tree_k4")),
                    ("transport", Json::from("dctcp")),
                    ("events", Json::from(events)),
                    ("wall_ms", Json::from(10u64)),
                    ("events_per_sec_wall", Json::from(rate)),
                ])]),
            ),
        ])
    }

    #[test]
    fn identical_docs_pass() {
        assert!(check_perf(&doc(100, 1000), &doc(100, 1000)).is_empty());
    }

    #[test]
    fn wall_clock_fields_may_differ() {
        assert!(check_perf(&doc(100, 999_999), &doc(100, 1000)).is_empty());
        // Faster is fine; only the floor matters.
        assert!(check_perf(&doc(100, 501), &doc(100, 1000)).is_empty());
    }

    #[test]
    fn simulated_drift_fails() {
        let errs = check_perf(&doc(101, 1000), &doc(100, 1000));
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("\"events\" drifted"), "{errs:?}");
    }

    #[test]
    fn rate_below_floor_fails() {
        let errs = check_perf(&doc(100, 499), &doc(100, 1000));
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("regressed"), "{errs:?}");
    }

    fn scaling_doc(events_at_4: u64) -> Json {
        let row = |threads: u64, events: u64| {
            Json::obj(vec![
                ("topology", Json::from("fat_tree_k8")),
                ("transport", Json::from("dctcp")),
                ("threads", Json::from(threads)),
                ("seed", Json::from(1u64)),
                ("events", Json::from(events)),
                ("wall_ms", Json::from(10 * threads)), // wall may differ freely
                ("events_per_sec_wall", Json::from(1000u64)),
            ])
        };
        Json::obj(vec![
            ("schema", Json::from(PERF_SCHEMA)),
            ("cases", Json::Arr(vec![row(1, 100), row(4, events_at_4)])),
        ])
    }

    #[test]
    fn thread_invariance_accepts_identical_simulated_fields() {
        assert!(check_thread_invariance(&scaling_doc(100)).is_empty());
    }

    #[test]
    fn thread_invariance_rejects_thread_dependent_results() {
        let errs = check_thread_invariance(&scaling_doc(101));
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("depends on thread count"), "{errs:?}");
        // …and the same violation fails a full --check run.
        let full = check_perf(&scaling_doc(101), &scaling_doc(101));
        assert!(
            full.iter().any(|e| e.contains("depends on thread count")),
            "{full:?}"
        );
    }

    #[test]
    fn case_count_mismatch_fails() {
        let empty = Json::obj(vec![
            ("schema", Json::from(PERF_SCHEMA)),
            ("cases", Json::Arr(vec![])),
        ]);
        assert!(!check_perf(&empty, &doc(100, 1000)).is_empty());
    }
}
