//! # dcn-bench
//!
//! The reproduction harness: one binary per table/figure of the paper
//! (see DESIGN.md §3 for the full index), plus harness-free perf benches
//! over the hot paths (`bench_case`). Every binary prints its figure's
//! series as TSV on stdout and
//! also writes `results/<name>.json` when `--out <dir>` is given.
//!
//! Common flags: `--scale tiny|small|paper` (default `small`) selects the
//! experiment size (DESIGN.md §4, substitution 4), `--seed N` the RNG
//! seed, `--trace <path>` streams structured simulator events as JSONL,
//! `--telemetry <path>` samples time-series fabric state, and
//! `--manifest <path>` writes a run manifest (binaries that run several
//! experiments suffix each path per run).

pub mod perf;
pub mod supervise;

use dcn_json::Json;

/// Parsed common CLI options.
#[derive(Clone, Debug)]
pub struct Cli {
    pub scale: dcn_core::Scale,
    pub seed: u64,
    pub out_dir: Option<String>,
    /// `--trace <path>`: JSONL event-trace destination. Binaries that run
    /// more than one experiment derive per-run paths from it (see
    /// [`Cli::trace_path`]).
    pub trace: Option<String>,
    /// `--telemetry <path>`: time-series telemetry JSONL destination,
    /// per-run derived like `--trace`.
    pub telemetry: Option<String>,
    /// `--manifest <path>`: run-manifest JSON destination, per-run derived
    /// like `--trace`.
    pub manifest: Option<String>,
    /// Boolean switches beyond the shared set (e.g. `--dynamic` for the
    /// failure ablation); binaries check them with [`Cli::has_flag`].
    pub flags: Vec<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: dcn_core::Scale::Small,
            seed: 1,
            out_dir: None,
            trace: None,
            telemetry: None,
            manifest: None,
            flags: Vec::new(),
        }
    }
}

impl Cli {
    /// Whether a binary-specific boolean switch (e.g. `--dynamic`) was
    /// passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The `--trace` destination for one named run: `events.jsonl` +
    /// `"dctcp"` → `events.dctcp.jsonl` (the suffix lands before a final
    /// extension, if any). `None` when tracing is off.
    pub fn trace_path(&self, run: &str) -> Option<String> {
        self.trace.as_deref().map(|b| derive_run_path(b, run))
    }

    /// The `--telemetry` destination for one named run (same derivation as
    /// [`Cli::trace_path`]).
    pub fn telemetry_path(&self, run: &str) -> Option<String> {
        self.telemetry.as_deref().map(|b| derive_run_path(b, run))
    }

    /// The `--manifest` destination for one named run (same derivation as
    /// [`Cli::trace_path`]).
    pub fn manifest_path(&self, run: &str) -> Option<String> {
        self.manifest.as_deref().map(|b| derive_run_path(b, run))
    }
}

/// Inserts a run label before the final extension: `events.jsonl` +
/// `"dctcp"` → `events.dctcp.jsonl`.
fn derive_run_path(base: &str, run: &str) -> String {
    match base.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}.{run}.{ext}"),
        _ => format!("{base}.{run}"),
    }
}

/// Parses `--scale`, `--seed`, `--out` from `std::env::args`. Other
/// `--flag` switches are collected into [`Cli::flags`] for the binary to
/// interpret; anything else is an error.
pub fn parse_cli() -> Cli {
    let mut cli = Cli::default();
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                cli.scale = dcn_core::Scale::parse(&args[i])
                    .unwrap_or_else(|| panic!("unknown scale '{}'", args[i]));
            }
            "--seed" => {
                i += 1;
                cli.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                cli.out_dir = Some(args[i].clone());
            }
            "--trace" => {
                i += 1;
                cli.trace = Some(args[i].clone());
            }
            "--telemetry" => {
                i += 1;
                cli.telemetry = Some(args[i].clone());
            }
            "--manifest" => {
                i += 1;
                cli.manifest = Some(args[i].clone());
            }
            other if other.starts_with("--") => {
                cli.flags.push(other.trim_start_matches("--").to_string());
            }
            other => panic!("unexpected argument '{other}' (flags start with --)"),
        }
        i += 1;
    }
    cli
}

/// A figure's data: named columns over a shared x-axis.
#[derive(Clone, Debug)]
pub struct Series {
    pub figure: String,
    pub x_label: String,
    pub columns: Vec<String>,
    /// Each row: (x, one value per column); NaN marks a missing point.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl Series {
    pub fn new(figure: &str, x_label: &str, columns: &[&str]) -> Self {
        Series {
            figure: figure.to_string(),
            x_label: x_label.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len());
        self.rows.push((x, values));
    }

    /// Prints the TSV block the harness emits for every figure.
    pub fn print(&self) {
        println!("# {}", self.figure);
        print!("{}", self.x_label);
        for c in &self.columns {
            print!("\t{c}");
        }
        println!();
        for (x, vals) in &self.rows {
            print!("{x:.6}");
            for v in vals {
                if v.is_nan() {
                    print!("\t-");
                } else {
                    print!("\t{v:.6}");
                }
            }
            println!();
        }
    }

    /// The JSON form written by [`Series::write_json`].
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("figure", Json::from(self.figure.as_str())),
            ("x_label", Json::from(self.x_label.as_str())),
            (
                "columns",
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|c| Json::from(c.as_str()))
                        .collect(),
                ),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(x, vals)| {
                            let mut row = vec![Json::Num(*x)];
                            row.extend(vals.iter().map(|v| {
                                if v.is_nan() {
                                    Json::Null
                                } else {
                                    Json::Num(*v)
                                }
                            }));
                            Json::Arr(row)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `<out_dir>/<figure>.json` atomically (temporary + rename).
    pub fn write_json(&self, out_dir: &str) {
        std::fs::create_dir_all(out_dir).expect("create out dir");
        let path = format!("{out_dir}/{}.json", self.figure);
        dcn_core::write_atomic(&path, self.to_json().pretty().as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }

    /// Print and optionally persist, in one call.
    pub fn finish(&self, cli: &Cli) {
        self.print();
        if let Some(dir) = &cli.out_dir {
            self.write_json(dir);
        }
    }
}

/// Minimal timing harness for the `cargo bench` targets (all declared
/// `harness = false`): one warmup call, then `iters` timed runs, printing
/// the mean wall-clock per iteration in a unit matched to its magnitude.
pub fn bench_case<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    if per >= 1.0 {
        println!("{name}\t{per:.3} s/iter");
    } else if per >= 1e-3 {
        println!("{name}\t{:.3} ms/iter", per * 1e3);
    } else {
        println!("{name}\t{:.3} us/iter", per * 1e6);
    }
}

/// The flow-arrival sweep used in load figures: `n` evenly spaced rates up
/// to `max_rate` (flow starts per second, aggregate).
pub fn rate_sweep(max_rate: f64, n: usize) -> Vec<f64> {
    (1..=n).map(|i| max_rate * i as f64 / n as f64).collect()
}

/// The fraction-of-active-servers sweep of Figs 5/6/9/10.
pub fn fraction_sweep(n: usize) -> Vec<f64> {
    (1..=n).map(|i| i as f64 / n as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_rows_align() {
        let mut s = Series::new("figX", "x", &["a", "b"]);
        s.push(0.1, vec![1.0, 2.0]);
        s.push(0.2, vec![3.0, f64::NAN]);
        assert_eq!(s.rows.len(), 2);
    }

    #[test]
    #[should_panic]
    fn series_rejects_mismatched_row() {
        let mut s = Series::new("figX", "x", &["a", "b"]);
        s.push(0.1, vec![1.0]);
    }

    #[test]
    fn trace_path_suffixes_before_extension() {
        let mut cli = Cli::default();
        assert_eq!(cli.trace_path("dctcp"), None);
        cli.trace = Some("events.jsonl".to_string());
        assert_eq!(cli.trace_path("dctcp"), Some("events.dctcp.jsonl".into()));
        cli.trace = Some("trace".to_string());
        assert_eq!(cli.trace_path("pfabric"), Some("trace.pfabric".into()));
    }

    #[test]
    fn telemetry_and_manifest_paths_derive_like_trace() {
        let mut cli = Cli::default();
        assert_eq!(cli.telemetry_path("ft"), None);
        assert_eq!(cli.manifest_path("ft"), None);
        cli.telemetry = Some("ts.jsonl".to_string());
        cli.manifest = Some("results/run.json".to_string());
        assert_eq!(cli.telemetry_path("ft"), Some("ts.ft.jsonl".into()));
        assert_eq!(cli.manifest_path("ft"), Some("results/run.ft.json".into()));
    }

    #[test]
    fn sweeps() {
        assert_eq!(fraction_sweep(10).len(), 10);
        assert_eq!(fraction_sweep(10)[9], 1.0);
        let r = rate_sweep(1000.0, 4);
        assert_eq!(r, vec![250.0, 500.0, 750.0, 1000.0]);
    }
}

/// Per-scale Garg–Könemann options: tight on small instances, bracketed
/// (certified lower/upper) on paper-scale ones where tight ε is too slow.
pub fn gk_opts_for(n_racks: usize) -> dcn_maxflow::GkOptions {
    if n_racks <= 128 {
        dcn_maxflow::GkOptions {
            epsilon: 0.05,
            target: Some(1.0),
            gap: 0.04,
            max_phases: 2_000_000,
        }
    } else {
        dcn_maxflow::GkOptions {
            epsilon: 0.2,
            target: Some(1.0),
            gap: 0.1,
            max_phases: 2_000_000,
        }
    }
}

/// One point of a fluid-flow throughput curve with its certified bracket.
#[derive(Clone, Copy, Debug)]
pub struct FluidPoint {
    pub x: f64,
    /// Feasible (primal) per-server throughput, clamped to 1.
    pub lower: f64,
    /// Dual upper bound, clamped to 1.
    pub upper: f64,
}

/// Throughput-vs-fraction curve for a static topology under
/// longest-matching TMs (§5): one Garg–Könemann solve per x, spread over
/// scoped threads (one per point, capped by available parallelism).
pub fn fluid_curve(t: &dcn_topology::Topology, xs: &[f64], seed: u64) -> Vec<FluidPoint> {
    let racks = t.tors_with_servers();
    let opts = gk_opts_for(racks.len());
    let net = dcn_maxflow::FlowNetwork::from_topology(t);
    let solve = |x: f64| {
        let pairs = dcn_workloads::longest_matching(t, &racks, x, seed);
        let commodities: Vec<dcn_maxflow::Commodity> = pairs
            .iter()
            .map(|&(a, b)| dcn_maxflow::Commodity {
                src: a,
                dst: b,
                demand: t.servers_at(a) as f64,
            })
            .collect();
        let r = dcn_maxflow::max_concurrent_flow(&net, &commodities, opts);
        FluidPoint {
            x,
            lower: r.throughput.min(1.0),
            upper: r.upper_bound.min(1.0),
        }
    };
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut points: Vec<Option<FluidPoint>> = vec![None; xs.len()];
    std::thread::scope(|scope| {
        for (chunk_xs, chunk_out) in xs
            .chunks(xs.len().div_ceil(threads))
            .zip(points.chunks_mut(xs.len().div_ceil(threads)))
        {
            scope.spawn(|| {
                for (&x, out) in chunk_xs.iter().zip(chunk_out.iter_mut()) {
                    *out = Some(solve(x));
                }
            });
        }
    });
    points
        .into_iter()
        .map(|p| p.expect("every point solved"))
        .collect()
}

/// Per-scale packet-experiment timing: measurement window, flow-generation
/// horizon (a little past the window so load persists while window flows
/// drain), and a hard simulation-time cap.
#[derive(Clone, Copy, Debug)]
pub struct PacketSetup {
    pub window: (dcn_sim::Ns, dcn_sim::Ns),
    pub horizon_s: f64,
    pub max_time: dcn_sim::Ns,
}

pub fn packet_setup(scale: dcn_core::Scale) -> PacketSetup {
    let window = dcn_core::default_window(scale);
    PacketSetup {
        window,
        horizon_s: window.1 as f64 / 1e9 * 1.3,
        max_time: window.1.saturating_mul(40),
    }
}

/// One packet-level FCT data point: generate the workload, run, aggregate.
#[allow(clippy::too_many_arguments)]
pub fn fct_point(
    topology: &dcn_topology::Topology,
    routing: dcn_core::Routing,
    cfg: dcn_sim::SimConfig,
    pattern: &dyn dcn_workloads::TrafficPattern,
    sizes: &dyn dcn_workloads::FlowSizeDist,
    lambda: f64,
    setup: PacketSetup,
    seed: u64,
) -> dcn_sim::Metrics {
    fct_point_traced(
        topology, routing, cfg, pattern, sizes, lambda, setup, seed, None,
    )
}

/// [`fct_point`] with an optional JSONL trace destination: when `Some`,
/// every simulator event of the run streams to that file (created or
/// truncated). Binaries wire this to `--trace` via [`Cli::trace_path`].
#[allow(clippy::too_many_arguments)]
pub fn fct_point_traced(
    topology: &dcn_topology::Topology,
    routing: dcn_core::Routing,
    cfg: dcn_sim::SimConfig,
    pattern: &dyn dcn_workloads::TrafficPattern,
    sizes: &dyn dcn_workloads::FlowSizeDist,
    lambda: f64,
    setup: PacketSetup,
    seed: u64,
    trace: Option<&str>,
) -> dcn_sim::Metrics {
    let flows = dcn_workloads::generate_flows(pattern, sizes, lambda, setup.horizon_s, seed);
    let tracer: Option<Box<dyn dcn_sim::Tracer>> = trace.map(|p| {
        eprintln!("tracing events to {p}");
        Box::new(dcn_sim::JsonlTracer::create(p).unwrap_or_else(|e| panic!("open trace {p}: {e}")))
            as Box<dyn dcn_sim::Tracer>
    });
    let (m, _) = dcn_core::run_fct_experiment_traced(
        topology,
        routing,
        cfg,
        &flows,
        setup.window,
        setup.max_time,
        None,
        tracer,
    );
    if m.completed < m.flows {
        eprintln!(
            "warning: {}/{} window flows unfinished at max_time ({} {:?} λ={lambda})",
            m.flows - m.completed,
            m.flows,
            topology.name(),
            routing
        );
    }
    m
}

/// [`fct_point`] with the full observability wiring: per-run `--trace`,
/// `--telemetry`, and `--manifest` destinations derived from `cli` under
/// the `run` label. Identical to [`fct_point`] when none of the three
/// flags are set.
#[allow(clippy::too_many_arguments)]
pub fn fct_point_run(
    cli: &Cli,
    run: &str,
    topology: &dcn_topology::Topology,
    routing: dcn_core::Routing,
    cfg: dcn_sim::SimConfig,
    pattern: &dyn dcn_workloads::TrafficPattern,
    sizes: &dyn dcn_workloads::FlowSizeDist,
    lambda: f64,
    setup: PacketSetup,
) -> dcn_sim::Metrics {
    let flows = dcn_workloads::generate_flows(pattern, sizes, lambda, setup.horizon_s, cli.seed);
    let trace_path = cli.trace_path(run);
    let tracer: Option<Box<dyn dcn_sim::Tracer>> = trace_path.as_deref().map(|p| {
        eprintln!("tracing events to {p}");
        Box::new(dcn_sim::JsonlTracer::create(p).unwrap_or_else(|e| panic!("open trace {p}: {e}")))
            as Box<dyn dcn_sim::Tracer>
    });
    let telemetry = cli.telemetry_path(run).map(|p| {
        eprintln!("sampling telemetry to {p}");
        dcn_sim::Telemetry::to_file(&p, dcn_sim::DEFAULT_SAMPLE_EVERY_NS)
            .unwrap_or_else(|e| panic!("open telemetry {p}: {e}"))
    });
    let manifest_path = cli.manifest_path(run);
    let spec = manifest_path.as_ref().map(|_| {
        let mut s = dcn_core::ManifestSpec::new(run, cli.seed);
        s.trace_path = trace_path.clone();
        s
    });
    let (m, _, manifest) = dcn_core::run_fct_experiment_instrumented(
        topology,
        routing,
        cfg,
        &flows,
        setup.window,
        setup.max_time,
        None,
        tracer,
        telemetry,
        spec.as_ref(),
    );
    if let (Some(p), Some(man)) = (manifest_path, manifest) {
        man.write(&p)
            .unwrap_or_else(|e| panic!("write manifest {p}: {e}"));
        eprintln!("wrote {p}");
    }
    if m.completed < m.flows {
        eprintln!(
            "warning: {}/{} window flows unfinished at max_time ({} {:?} λ={lambda})",
            m.flows - m.completed,
            m.flows,
            topology.name(),
            routing
        );
    }
    m
}
