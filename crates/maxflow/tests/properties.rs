//! Property-style tests for the flow solvers: primal/dual sandwiching,
//! agreement with exact algorithms, bound consistency. Seeded sweeps
//! stand in for proptest.

use dcn_maxflow::bound::{capacity_path_bound, moore_avg_distance, restricted_dynamic_bound};
use dcn_maxflow::concurrent::{max_concurrent_flow, Commodity, GkOptions};
use dcn_maxflow::dinic::{topology_max_flow, Dinic};
use dcn_maxflow::lp::exact_concurrent_flow;
use dcn_maxflow::network::FlowNetwork;
use dcn_rng::Rng;
use dcn_topology::jellyfish::Jellyfish;
use dcn_topology::{NodeKind, Topology};

fn random_topology(n: u32, d: u32, seed: u64) -> Topology {
    Jellyfish::new(n, d, 2, seed).build()
}

/// GK's primal is feasible (≤ dual certificate) and within the FPTAS
/// guarantee of it once the gap rule fires.
#[test]
fn gk_sandwich() {
    let mut meta = Rng::seed_from_u64(0x65C);
    for _ in 0..10 {
        let n = meta.gen_range(10u32..30);
        let seed = meta.gen_range(0u64..100);
        let t = random_topology(n, 4, seed);
        let coms: Vec<Commodity> = (0..n)
            .map(|i| Commodity {
                src: i,
                dst: (i + n / 2) % n,
                demand: 2.0,
            })
            .collect();
        let net = FlowNetwork::from_topology(&t);
        let r = max_concurrent_flow(
            &net,
            &coms,
            GkOptions {
                epsilon: 0.08,
                target: None,
                gap: 0.05,
                max_phases: 500_000,
            },
        );
        assert!(r.throughput > 0.0);
        assert!(r.throughput <= r.upper_bound + 1e-9);
        assert!(r.throughput >= r.upper_bound * 0.6, "gap too wide");
    }
}

/// Single-commodity concurrent flow equals max flow (scaled by demand).
#[test]
fn gk_matches_dinic_single_commodity() {
    let mut meta = Rng::seed_from_u64(0x6D1);
    for _ in 0..10 {
        let n = meta.gen_range(8u32..20);
        let seed = meta.gen_range(0u64..100);
        let t = random_topology(n, 4, seed);
        let exact = topology_max_flow(&t, 0, n - 1);
        let net = FlowNetwork::from_topology(&t);
        let r = max_concurrent_flow(
            &net,
            &[Commodity {
                src: 0,
                dst: n - 1,
                demand: 1.0,
            }],
            GkOptions {
                epsilon: 0.05,
                target: None,
                gap: 0.02,
                max_phases: 500_000,
            },
        );
        assert!(
            r.throughput <= exact * 1.01,
            "gk {} > dinic {}",
            r.throughput,
            exact
        );
        assert!(
            r.throughput >= exact * 0.8,
            "gk {} << dinic {}",
            r.throughput,
            exact
        );
    }
}

/// GK never beats the exact LP on small instances.
#[test]
fn gk_below_lp() {
    for seed in 0u64..10 {
        let mut t = Topology::new("small");
        for _ in 0..6 {
            t.add_node(NodeKind::Tor, 1);
        }
        // A ring plus a chord; seed varies the chord.
        for i in 0..6u32 {
            t.add_link(i, (i + 1) % 6);
        }
        t.add_link(seed as u32 % 6, (seed as u32 % 6 + 3) % 6);
        let net = FlowNetwork::from_topology(&t);
        let coms = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 1.0,
            },
            Commodity {
                src: 1,
                dst: 4,
                demand: 1.0,
            },
        ];
        let lp = exact_concurrent_flow(&net, &coms);
        let gk = max_concurrent_flow(
            &net,
            &coms,
            GkOptions {
                epsilon: 0.05,
                target: None,
                gap: 0.02,
                max_phases: 500_000,
            },
        );
        assert!(
            gk.throughput <= lp + 1e-6,
            "gk {} > lp {}",
            gk.throughput,
            lp
        );
        assert!(
            gk.upper_bound >= lp - 1e-6,
            "dual {} < lp {}",
            gk.upper_bound,
            lp
        );
    }
}

/// Max flow is symmetric on undirected graphs and bounded by the
/// smaller endpoint degree.
#[test]
fn dinic_symmetric_and_degree_bounded() {
    let mut meta = Rng::seed_from_u64(0xD151);
    for _ in 0..12 {
        let n = meta.gen_range(8u32..24);
        let seed = meta.gen_range(0u64..50);
        let t = random_topology(n, 4, seed);
        let f_ab = topology_max_flow(&t, 0, n - 1);
        let f_ba = topology_max_flow(&t, n - 1, 0);
        assert!((f_ab - f_ba).abs() < 1e-9);
        let cap = t.degree(0).min(t.degree(n - 1)) as f64;
        assert!(f_ab <= cap + 1e-9);
    }
}

/// Dinic conservation: flow value is bounded by the source's outgoing
/// capacity on random small graphs.
#[test]
fn dinic_respects_capacity() {
    let mut meta = Rng::seed_from_u64(0xD1C);
    for _ in 0..20 {
        let m = meta.gen_range(5usize..30);
        let mut d = Dinic::new(8);
        let mut out_cap = 0.0;
        for _ in 0..m {
            let a = meta.gen_range(0u32..8);
            let b = meta.gen_range(0u32..8);
            let c = 0.1 + meta.gen_range(0.0..4.9);
            if a != b {
                d.add_edge(a, b, c);
                if a == 0 {
                    out_cap += c;
                }
            }
        }
        let f = d.max_flow(0, 7);
        assert!(f <= out_cap + 1e-9);
        assert!(f >= 0.0);
    }
}

/// Moore-bound distance decreases in degree, increases in node count.
#[test]
fn moore_monotonicity() {
    let mut meta = Rng::seed_from_u64(0x300E);
    for _ in 0..40 {
        let n = meta.gen_range(4usize..200);
        let d = meta.gen_range(2usize..10);
        let base = moore_avg_distance(n, d);
        assert!(moore_avg_distance(n, d + 1) <= base + 1e-12);
        assert!(moore_avg_distance(n + 1, d) >= base - 1e-12);
        assert!(base >= 1.0);
    }
}

/// The restricted-dynamic bound lies in (0, 1] and shrinks with scale.
#[test]
fn restricted_bound_sane() {
    let mut meta = Rng::seed_from_u64(0x2E5);
    for _ in 0..40 {
        let n = meta.gen_range(2usize..500);
        let r = meta.gen_range(2usize..30);
        let s = meta.gen_range(1usize..30);
        let b = restricted_dynamic_bound(n, r, s);
        assert!(b > 0.0 && b <= 1.0);
        assert!(restricted_dynamic_bound(n + 10, r, s) <= b + 1e-12);
    }
}

/// The capacity/path bound is ≤ 1 after clamping and scales inversely
/// with demand.
#[test]
fn capacity_bound_scaling() {
    let mut meta = Rng::seed_from_u64(0xCA9);
    for _ in 0..12 {
        let n = meta.gen_range(8u32..20);
        let seed = meta.gen_range(0u64..50);
        let dem = 0.5 + meta.gen_range(0.0..3.5);
        let t = random_topology(n, 4, seed);
        let flows: Vec<(u32, u32, f64)> = (0..n).map(|i| (i, (i + 1) % n, dem)).collect();
        let b = capacity_path_bound(&t, &flows);
        assert!(b > 0.0 && b <= 1.0);
        let flows2: Vec<(u32, u32, f64)> = flows.iter().map(|&(a, b, d)| (a, b, d * 2.0)).collect();
        let b2 = capacity_path_bound(&t, &flows2);
        assert!(b2 <= b + 1e-12);
    }
}
