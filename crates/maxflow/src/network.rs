//! Directed flow-network view of an undirected [`Topology`].
//!
//! Every undirected link becomes two directed arcs (full-duplex links, as in
//! the paper's fluid-flow model). Arcs are stored in CSR form for fast
//! shortest-path computation inside the Garg–Könemann solver.

use dcn_topology::Topology;

/// A directed arc with capacity.
#[derive(Clone, Copy, Debug)]
pub struct Arc {
    pub from: u32,
    pub to: u32,
    pub capacity: f64,
}

/// CSR directed graph derived from a [`Topology`].
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    pub num_nodes: usize,
    pub arcs: Vec<Arc>,
    /// `out_start[v]..out_start[v+1]` indexes `out_arcs` for node v.
    out_start: Vec<u32>,
    /// Arc indices ordered by source node.
    out_arcs: Vec<u32>,
}

impl FlowNetwork {
    /// Builds the bidirected network: arcs 2i and 2i+1 are the two
    /// directions of topology link i.
    pub fn from_topology(t: &Topology) -> Self {
        let mut arcs = Vec::with_capacity(t.num_links() * 2);
        for l in t.links() {
            arcs.push(Arc {
                from: l.a,
                to: l.b,
                capacity: l.capacity,
            });
            arcs.push(Arc {
                from: l.b,
                to: l.a,
                capacity: l.capacity,
            });
        }
        Self::from_arcs(t.num_nodes(), arcs)
    }

    /// Builds from explicit arcs (used by tests and the LP verifier).
    pub fn from_arcs(num_nodes: usize, arcs: Vec<Arc>) -> Self {
        let mut counts = vec![0u32; num_nodes + 1];
        for a in &arcs {
            assert!((a.from as usize) < num_nodes && (a.to as usize) < num_nodes);
            assert!(a.capacity > 0.0);
            counts[a.from as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            counts[i + 1] += counts[i];
        }
        let out_start = counts.clone();
        let mut cursor = counts;
        let mut out_arcs = vec![0u32; arcs.len()];
        for (i, a) in arcs.iter().enumerate() {
            out_arcs[cursor[a.from as usize] as usize] = i as u32;
            cursor[a.from as usize] += 1;
        }
        FlowNetwork {
            num_nodes,
            arcs,
            out_start,
            out_arcs,
        }
    }

    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Arc indices leaving `v`.
    pub fn out(&self, v: u32) -> &[u32] {
        let s = self.out_start[v as usize] as usize;
        let e = self.out_start[v as usize + 1] as usize;
        &self.out_arcs[s..e]
    }

    /// Dijkstra over per-arc lengths; returns (dist, parent arc) arrays.
    /// `len[arc]` must be ≥ 0. Unreachable nodes get `f64::INFINITY`.
    pub fn dijkstra(&self, src: u32, len: &[f64]) -> (Vec<f64>, Vec<u32>) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Item(f64, u32);
        impl Eq for Item {}
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on distance; ties broken by node id for determinism.
                other
                    .0
                    .partial_cmp(&self.0)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.1.cmp(&self.1))
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist = vec![f64::INFINITY; self.num_nodes];
        let mut parent = vec![u32::MAX; self.num_nodes];
        let mut heap = BinaryHeap::new();
        dist[src as usize] = 0.0;
        heap.push(Item(0.0, src));
        while let Some(Item(d, u)) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &ai in self.out(u) {
                let a = self.arcs[ai as usize];
                let nd = d + len[ai as usize];
                if nd < dist[a.to as usize] {
                    dist[a.to as usize] = nd;
                    parent[a.to as usize] = ai;
                    heap.push(Item(nd, a.to));
                }
            }
        }
        (dist, parent)
    }

    /// Early-exit Dijkstra using a reusable scratch buffer: stops as soon
    /// as `dst` is settled and writes the arc path into `scratch.path`.
    /// Returns `false` if `dst` is unreachable. This is the hot path of
    /// the Garg–Könemann solver (millions of calls per instance).
    pub fn shortest_path_to(
        &self,
        src: u32,
        dst: u32,
        len: &[f64],
        scratch: &mut DijkstraScratch,
    ) -> bool {
        scratch.ensure(self.num_nodes);
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        scratch.heap.clear();
        scratch.set(src as usize, 0.0, u32::MAX, epoch);
        scratch.heap.push(HeapEntry(0.0, src));
        while let Some(HeapEntry(d, u)) = scratch.heap.pop() {
            if scratch.stamp[u as usize] == epoch && d > scratch.dist[u as usize] {
                continue;
            }
            if u == dst {
                // Reconstruct the arc path.
                scratch.path.clear();
                let mut v = dst;
                while v != src {
                    let ai = scratch.parent[v as usize];
                    scratch.path.push(ai);
                    v = self.arcs[ai as usize].from;
                }
                scratch.path.reverse();
                return true;
            }
            for &ai in self.out(u) {
                let a = self.arcs[ai as usize];
                let nd = d + len[ai as usize];
                let t = a.to as usize;
                if scratch.stamp[t] != epoch || nd < scratch.dist[t] {
                    scratch.set(t, nd, ai, epoch);
                    scratch.heap.push(HeapEntry(nd, a.to));
                }
            }
        }
        false
    }

    /// Reconstructs the arc path from `src` to `dst` out of Dijkstra
    /// parents. Returns `None` if unreachable.
    pub fn path_from_parents(&self, src: u32, dst: u32, parent: &[u32]) -> Option<Vec<u32>> {
        let mut path = Vec::new();
        let mut v = dst;
        while v != src {
            let ai = parent[v as usize];
            if ai == u32::MAX {
                return None;
            }
            path.push(ai);
            v = self.arcs[ai as usize].from;
        }
        path.reverse();
        Some(path)
    }
}

/// Min-heap entry for the scratch Dijkstra (distance, node), ordered by
/// distance with node-id tie-breaking for determinism.
#[derive(PartialEq)]
pub struct HeapEntry(pub f64, pub u32);

impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable buffers for [`FlowNetwork::shortest_path_to`]. Epoch stamping
/// avoids clearing the distance arrays between calls.
#[derive(Default)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    parent: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: std::collections::BinaryHeap<HeapEntry>,
    /// Arc path of the last successful query, source→destination order.
    pub path: Vec<u32>,
}

impl DijkstraScratch {
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, u32::MAX);
            self.stamp.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
    }

    #[inline]
    fn set(&mut self, node: usize, dist: f64, parent: u32, epoch: u32) {
        self.dist[node] = dist;
        self.parent[node] = parent;
        self.stamp[node] = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::{NodeKind, Topology};

    fn diamond() -> FlowNetwork {
        // 0 -> {1,2} -> 3 with unit capacities.
        let mut t = Topology::new("diamond");
        for _ in 0..4 {
            t.add_node(NodeKind::Tor, 1);
        }
        t.add_link(0, 1);
        t.add_link(0, 2);
        t.add_link(1, 3);
        t.add_link(2, 3);
        FlowNetwork::from_topology(&t)
    }

    #[test]
    fn csr_adjacency() {
        let net = diamond();
        assert_eq!(net.num_arcs(), 8);
        assert_eq!(net.out(0).len(), 2);
        assert_eq!(net.out(3).len(), 2);
        for &ai in net.out(1) {
            assert_eq!(net.arcs[ai as usize].from, 1);
        }
    }

    #[test]
    fn dijkstra_unit_lengths() {
        let net = diamond();
        let len = vec![1.0; net.num_arcs()];
        let (dist, parent) = net.dijkstra(0, &len);
        assert_eq!(dist[3], 2.0);
        let path = net.path_from_parents(0, 3, &parent).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(net.arcs[path[0] as usize].from, 0);
        assert_eq!(net.arcs[path[1] as usize].to, 3);
    }

    #[test]
    fn dijkstra_weighted_prefers_cheap_path() {
        let net = diamond();
        let mut len = vec![1.0; net.num_arcs()];
        // Make 0->1 expensive; path must go through 2.
        len[0] = 10.0;
        let (_, parent) = net.dijkstra(0, &len);
        let path = net.path_from_parents(0, 3, &parent).unwrap();
        assert_eq!(net.arcs[path[0] as usize].to, 2);
    }

    #[test]
    fn unreachable_is_infinite() {
        let net = FlowNetwork::from_arcs(
            3,
            vec![Arc {
                from: 0,
                to: 1,
                capacity: 1.0,
            }],
        );
        let (dist, parent) = net.dijkstra(0, &[1.0]);
        assert!(dist[2].is_infinite());
        assert!(net.path_from_parents(0, 2, &parent).is_none());
    }
}
