//! # dcn-maxflow
//!
//! Fluid-flow throughput evaluation for the SIGCOMM 2017 paper *"Beyond
//! fat-trees without antennae, mirrors, and disco-balls"*: the machinery
//! behind its §5 comparison of static and dynamic topologies.
//!
//! - [`concurrent`] — Garg–Könemann maximum concurrent flow (the paper's
//!   LP-based throughput, as a (1−ε)³ FPTAS).
//! - [`lp`] — exact two-phase simplex used as ground truth on small cases.
//! - [`dinic`] — exact single-commodity max flow.
//! - [`bound`] — the capacity/path-length throughput upper bounds of
//!   Singla et al. (NSDI'14) used for the *restricted dynamic* model.
//!
//! ```
//! use dcn_maxflow::concurrent::{per_server_throughput, GkOptions};
//! use dcn_topology::fattree::FatTree;
//!
//! let t = FatTree::full(4).build();
//! // ToR 0 (pod 0) to ToR 4 (pod 1): a full fat-tree supports line rate
//! // (the FPTAS reports a value within its (1−ε)³ guarantee of 1.0).
//! let lam = per_server_throughput(&t, &[(0, 4)], GkOptions::default());
//! assert!(lam >= 0.857 && lam <= 1.0);
//! ```

pub mod bound;
pub mod concurrent;
pub mod dinic;
pub mod lp;
pub mod network;

pub use concurrent::{max_concurrent_flow, per_server_throughput, Commodity, GkOptions, GkResult};
pub use network::{Arc, FlowNetwork};
