//! Dinic's exact single-commodity max-flow, used for toy-example bounds,
//! bisection-style audits, and as ground truth in solver tests.

/// Residual-graph max-flow solver. Capacities are `f64`; a small epsilon
/// guards against floating-point residue.
pub struct Dinic {
    n: usize,
    // Arc arrays: to[i], cap[i]; arc i^1 is the reverse of arc i.
    to: Vec<u32>,
    cap: Vec<f64>,
    head: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

const EPS: f64 = 1e-12;

impl Dinic {
    pub fn new(num_nodes: usize) -> Self {
        Dinic {
            n: num_nodes,
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); num_nodes],
            level: Vec::new(),
            iter: Vec::new(),
        }
    }

    /// Adds a directed edge `u → v` with the given capacity.
    pub fn add_edge(&mut self, u: u32, v: u32, capacity: f64) {
        assert!((u as usize) < self.n && (v as usize) < self.n);
        assert!(capacity >= 0.0);
        let i = self.to.len() as u32;
        self.to.push(v);
        self.cap.push(capacity);
        self.head[u as usize].push(i);
        self.to.push(u);
        self.cap.push(0.0);
        self.head[v as usize].push(i + 1);
    }

    /// Adds an undirected edge (capacity in both directions).
    pub fn add_undirected(&mut self, u: u32, v: u32, capacity: f64) {
        self.add_edge(u, v, capacity);
        self.add_edge(v, u, capacity);
    }

    fn bfs(&mut self, s: u32, t: u32) -> bool {
        self.level = vec![-1; self.n];
        let mut q = std::collections::VecDeque::new();
        self.level[s as usize] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ei in &self.head[u as usize] {
                let v = self.to[ei as usize];
                if self.cap[ei as usize] > EPS && self.level[v as usize] < 0 {
                    self.level[v as usize] = self.level[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        self.level[t as usize] >= 0
    }

    fn dfs(&mut self, u: u32, t: u32, f: f64) -> f64 {
        if u == t {
            return f;
        }
        while self.iter[u as usize] < self.head[u as usize].len() {
            let ei = self.head[u as usize][self.iter[u as usize]] as usize;
            let v = self.to[ei];
            if self.cap[ei] > EPS && self.level[v as usize] == self.level[u as usize] + 1 {
                let d = self.dfs(v, t, f.min(self.cap[ei]));
                if d > EPS {
                    self.cap[ei] -= d;
                    self.cap[ei ^ 1] += d;
                    return d;
                }
            }
            self.iter[u as usize] += 1;
        }
        0.0
    }

    /// Computes the max flow from `s` to `t`. Destroys residual capacities;
    /// call once per instance.
    pub fn max_flow(&mut self, s: u32, t: u32) -> f64 {
        assert_ne!(s, t);
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter = vec![0; self.n];
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }
}

/// Max flow between two switches of a topology, each undirected link
/// providing its capacity independently in both directions.
pub fn topology_max_flow(t: &dcn_topology::Topology, s: u32, d: u32) -> f64 {
    let mut dinic = Dinic::new(t.num_nodes());
    for l in t.links() {
        dinic.add_undirected(l.a, l.b, l.capacity);
    }
    dinic.max_flow(s, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::FatTree;

    #[test]
    fn single_edge() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, 3.5);
        assert!((d.max_flow(0, 1) - 3.5).abs() < 1e-9);
    }

    #[test]
    fn classic_cut() {
        // s=0, t=5; min cut value 4 (CLRS-style example).
        let mut d = Dinic::new(6);
        d.add_edge(0, 1, 3.0);
        d.add_edge(0, 2, 2.0);
        d.add_edge(1, 3, 2.0);
        d.add_edge(1, 4, 2.0);
        d.add_edge(2, 4, 2.0);
        d.add_edge(3, 5, 2.0);
        d.add_edge(4, 5, 2.0);
        assert!((d.max_flow(0, 5) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1.0);
        d.add_edge(1, 3, 1.0);
        d.add_edge(0, 2, 1.0);
        d.add_edge(2, 3, 1.0);
        assert!((d.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fat_tree_tor_to_tor_full_bandwidth() {
        // In a full fat-tree, ToR-to-ToR max flow equals the ToR uplink
        // count k/2.
        let t = FatTree::full(4).build();
        let f = topology_max_flow(&t, 0, 2); // ToRs in different pods
        assert!((f - 2.0).abs() < 1e-9, "flow {f}");
    }

    #[test]
    fn oversubscription_cuts_flow() {
        let t = FatTree::oversubscribed_core(4, 1).build();
        // Pod-to-pod aggregate flow halves at the core stage. ToR-to-ToR
        // in different pods is still limited by its 2 uplinks, but the
        // pod-level cut shrinks: contract a pod by summing flows.
        let full = FatTree::full(4).build();
        let f_over = topology_max_flow(&t, 0, 2);
        let f_full = topology_max_flow(&full, 0, 2);
        assert!(f_over <= f_full + 1e-9);
    }

    #[test]
    fn zero_when_disconnected() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 1.0);
        assert_eq!(d.max_flow(0, 2), 0.0);
    }
}
