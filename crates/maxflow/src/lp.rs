//! A compact two-phase dense simplex solver, used to verify the
//! Garg–Könemann approximation against *exact* LP optima on small
//! instances (the paper's methodology solves this LP with a commercial
//! solver; see DESIGN.md §4).
//!
//! Solves `maximize c·x  s.t.  A x (≤ | =) b,  x ≥ 0` with Bland's rule
//! for anti-cycling. Intended for instances with at most a few hundred
//! variables; the bench harness uses [`crate::concurrent`] instead.
#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

use crate::concurrent::Commodity;
use crate::network::FlowNetwork;

/// Constraint sense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    Le,
    Eq,
}

/// Outcome of [`simplex_max`].
#[derive(Clone, Debug)]
pub enum LpResult {
    /// Optimal objective value and primal solution.
    Optimal {
        objective: f64,
        x: Vec<f64>,
    },
    Infeasible,
    Unbounded,
}

const TOL: f64 = 1e-9;

/// Maximizes `c·x` subject to `rows[i]·x (sense[i]) b[i]`, `x ≥ 0`.
/// All right-hand sides must be non-negative.
pub fn simplex_max(rows: &[Vec<f64>], senses: &[Sense], b: &[f64], c: &[f64]) -> LpResult {
    let m = rows.len();
    let n = c.len();
    assert_eq!(senses.len(), m);
    assert_eq!(b.len(), m);
    for (i, &bi) in b.iter().enumerate() {
        assert!(bi >= -TOL, "negative RHS {bi} at row {i} unsupported");
        assert_eq!(rows[i].len(), n);
    }

    let n_slack = senses.iter().filter(|&&s| s == Sense::Le).count();
    let n_art = m; // one artificial per row keeps the basis trivial
    let ncols = n + n_slack + n_art;

    // Tableau: m rows × (ncols + 1); last column is RHS.
    let mut t = vec![vec![0.0f64; ncols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut slack_idx = 0usize;
    for i in 0..m {
        t[i][..n].copy_from_slice(&rows[i]);
        t[i][ncols] = b[i];
        if senses[i] == Sense::Le {
            t[i][n + slack_idx] = 1.0;
            slack_idx += 1;
        }
        let art = n + n_slack + i;
        t[i][art] = 1.0;
        basis[i] = art;
    }

    // Phase 1: minimize Σ artificials ⇒ cost row starts as Σ of all rows
    // (pricing out the artificial basis).
    let mut cost = vec![0.0f64; ncols + 1];
    for row in &t {
        for j in 0..=ncols {
            cost[j] += row[j];
        }
    }
    for a in 0..n_art {
        cost[n + n_slack + a] = 0.0;
    }
    if !pivot_loop(&mut t, &mut cost, &mut basis, n + n_slack + n_art) {
        return LpResult::Unbounded; // cannot happen in phase 1
    }
    if cost[ncols] > 1e-7 {
        return LpResult::Infeasible;
    }
    // Drive any basic artificial out of the basis (or zero its row).
    for i in 0..m {
        if basis[i] >= n + n_slack {
            let mut pivoted = false;
            for j in 0..n + n_slack {
                if t[i][j].abs() > TOL {
                    pivot(&mut t, &mut cost, &mut basis, i, j);
                    pivoted = true;
                    break;
                }
            }
            if !pivoted {
                // Redundant row; leave the zero-valued artificial basic.
            }
        }
    }

    // Phase 2: maximize c·x. Reduced-cost row in the "c − z" convention:
    // cost_j = c_j − Σ_i cB_i·t[i][j]; pivot while some non-artificial
    // entry is > TOL. The RHS cell then holds −(objective value).
    let mut cost2 = vec![0.0f64; ncols + 1];
    for j in 0..n {
        cost2[j] = c[j];
    }
    for i in 0..m {
        let bi = basis[i];
        let cb = if bi < n { c[bi] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..=ncols {
                cost2[j] -= cb * t[i][j];
            }
        }
    }
    // Forbid artificial columns from re-entering.
    if !pivot_loop(&mut t, &mut cost2, &mut basis, n + n_slack) {
        return LpResult::Unbounded;
    }

    let mut x = vec![0.0f64; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][ncols];
        }
    }
    LpResult::Optimal {
        objective: -cost2[ncols],
        x,
    }
}

/// Runs simplex pivots until optimal (`true`) or unbounded (`false`).
/// Only columns `< allowed_cols` may enter the basis.
fn pivot_loop(
    t: &mut [Vec<f64>],
    cost: &mut [f64],
    basis: &mut [usize],
    allowed_cols: usize,
) -> bool {
    let m = t.len();
    let ncols = cost.len() - 1;
    loop {
        // Bland: entering column = smallest index with positive cost entry
        // (we maximize the cost row's objective by driving positives out).
        let Some(enter) = (0..allowed_cols.min(ncols)).find(|&j| cost[j] > TOL) else {
            return true;
        };
        // Ratio test, Bland tie-break on basis index.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > TOL {
                let ratio = t[i][ncols] / t[i][enter];
                if ratio < best - TOL
                    || (ratio < best + TOL && leave.is_none_or(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return false; // unbounded
        };
        pivot(t, cost, basis, leave, enter);
    }
}

fn pivot(t: &mut [Vec<f64>], cost: &mut [f64], basis: &mut [usize], row: usize, col: usize) {
    let ncols = cost.len() - 1;
    let p = t[row][col];
    debug_assert!(p.abs() > TOL);
    for j in 0..=ncols {
        t[row][j] /= p;
    }
    for i in 0..t.len() {
        if i != row && t[i][col].abs() > TOL {
            let f = t[i][col];
            for j in 0..=ncols {
                t[i][j] -= f * t[row][j];
            }
        }
    }
    if cost[col].abs() > TOL {
        let f = cost[col];
        for j in 0..=ncols {
            cost[j] -= f * t[row][j];
        }
    }
    basis[row] = col;
}

/// Exact maximum concurrent flow by arc-flow LP — ground truth for tests.
/// Variables: `t` then `f[j][e]` per commodity and arc. Suitable only for
/// small instances (cost grows with `(K·m)³`).
pub fn exact_concurrent_flow(net: &FlowNetwork, commodities: &[Commodity]) -> f64 {
    let m = net.num_arcs();
    let k = commodities.len();
    let nvar = 1 + k * m;
    let var = |j: usize, e: usize| 1 + j * m + e;

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut senses = Vec::new();
    let mut b = Vec::new();

    // Capacity per arc.
    for e in 0..m {
        let mut r = vec![0.0; nvar];
        for j in 0..k {
            r[var(j, e)] = 1.0;
        }
        rows.push(r);
        senses.push(Sense::Le);
        b.push(net.arcs[e].capacity);
    }
    // Conservation: out − in = d_j·t at src, 0 at internal nodes (dst row
    // omitted; it is implied).
    for (j, com) in commodities.iter().enumerate() {
        for v in 0..net.num_nodes as u32 {
            if v == com.dst {
                continue;
            }
            let mut r = vec![0.0; nvar];
            for (e, a) in net.arcs.iter().enumerate() {
                if a.from == v {
                    r[var(j, e)] += 1.0;
                }
                if a.to == v {
                    r[var(j, e)] -= 1.0;
                }
            }
            if v == com.src {
                r[0] = -com.demand;
            }
            rows.push(r);
            senses.push(Sense::Eq);
            b.push(0.0);
        }
    }
    let mut c = vec![0.0; nvar];
    c[0] = 1.0;

    match simplex_max(&rows, &senses, &b, &c) {
        LpResult::Optimal { objective, .. } => objective,
        other => panic!("concurrent-flow LP not optimal: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::{max_concurrent_flow, GkOptions};
    use crate::network::Arc;
    use dcn_topology::{NodeKind, Topology};

    #[test]
    fn textbook_lp() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36 at (2, 6).
        let rows = vec![vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]];
        let senses = vec![Sense::Le; 3];
        let b = vec![4.0, 12.0, 18.0];
        let c = vec![3.0, 5.0];
        match simplex_max(&rows, &senses, &b, &c) {
            LpResult::Optimal { objective, x } => {
                assert!((objective - 36.0).abs() < 1e-6);
                assert!((x[0] - 2.0).abs() < 1e-6 && (x[1] - 6.0).abs() < 1e-6);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_constraint() {
        // max x + y s.t. x + y = 5, x ≤ 3 → 5.
        let rows = vec![vec![1.0, 1.0], vec![1.0, 0.0]];
        let senses = vec![Sense::Eq, Sense::Le];
        match simplex_max(&rows, &senses, &[5.0, 3.0], &[1.0, 1.0]) {
            LpResult::Optimal { objective, .. } => assert!((objective - 5.0).abs() < 1e-6),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x = 3.
        let rows = vec![vec![1.0], vec![1.0]];
        let senses = vec![Sense::Le, Sense::Eq];
        match simplex_max(&rows, &senses, &[1.0, 3.0], &[1.0]) {
            LpResult::Infeasible => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        let rows: Vec<Vec<f64>> = vec![];
        let senses = vec![];
        match simplex_max(&rows, &senses, &[], &[1.0]) {
            LpResult::Unbounded => {}
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn lp_single_edge_concurrent_flow() {
        let net = FlowNetwork::from_arcs(
            2,
            vec![Arc {
                from: 0,
                to: 1,
                capacity: 1.0,
            }],
        );
        let t = exact_concurrent_flow(
            &net,
            &[Commodity {
                src: 0,
                dst: 1,
                demand: 2.0,
            }],
        );
        assert!((t - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gk_matches_lp_on_diamond() {
        let mut top = Topology::new("diamond");
        for _ in 0..4 {
            top.add_node(NodeKind::Tor, 1);
        }
        top.add_link(0, 1);
        top.add_link(0, 2);
        top.add_link(1, 3);
        top.add_link(2, 3);
        let net = FlowNetwork::from_topology(&top);
        let coms = [
            Commodity {
                src: 0,
                dst: 3,
                demand: 1.0,
            },
            Commodity {
                src: 1,
                dst: 2,
                demand: 1.0,
            },
        ];
        let exact = exact_concurrent_flow(&net, &coms);
        let approx = max_concurrent_flow(
            &net,
            &coms,
            GkOptions {
                epsilon: 0.03,
                target: None,
                gap: 0.01,
                max_phases: 2_000_000,
            },
        )
        .throughput;
        assert!(
            approx <= exact + 1e-6 && approx >= exact * 0.88,
            "gk {approx} vs lp {exact}"
        );
    }

    #[test]
    fn gk_matches_lp_on_cycle_permutation() {
        // 5-cycle with a rotation permutation; LP optimum is nontrivial.
        let mut top = Topology::new("c5");
        for _ in 0..5 {
            top.add_node(NodeKind::Tor, 1);
        }
        for i in 0..5u32 {
            top.add_link(i, (i + 1) % 5);
        }
        let net = FlowNetwork::from_topology(&top);
        let coms: Vec<Commodity> = (0..5)
            .map(|i| Commodity {
                src: i,
                dst: (i + 2) % 5,
                demand: 1.0,
            })
            .collect();
        let exact = exact_concurrent_flow(&net, &coms);
        let approx = max_concurrent_flow(
            &net,
            &coms,
            GkOptions {
                epsilon: 0.03,
                target: None,
                gap: 0.01,
                max_phases: 2_000_000,
            },
        )
        .throughput;
        assert!(
            approx <= exact + 1e-6 && approx >= exact * 0.88,
            "gk {approx} vs lp {exact}"
        );
    }
}
