//! Maximum concurrent flow via the Garg–Könemann / Fleischer
//! multiplicative-weights FPTAS.
//!
//! This replaces the LP solver used by the paper's topobench methodology
//! (§5): given rack-level commodities, it computes the largest `λ` such
//! that every commodity can simultaneously route `λ · demand` without
//! violating arc capacities — to within a `(1−ε)³` factor of optimal.

use crate::network::FlowNetwork;

/// A demand between two switches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Commodity {
    pub src: u32,
    pub dst: u32,
    /// Demand in line-rate units (for rack-level hose TMs: servers at the
    /// source rack).
    pub demand: f64,
}

/// Solver knobs.
#[derive(Clone, Copy, Debug)]
pub struct GkOptions {
    /// Multiplicative-weights step size; the worst-case guarantee is
    /// (1−ε)³·OPT, but the duality-gap stop below is usually much tighter.
    pub epsilon: f64,
    /// Optional early exit: stop once the feasible throughput provably
    /// reaches this value (per-server throughput is clamped at 1.0, so
    /// `Some(1.0)` is the usual choice).
    pub target: Option<f64>,
    /// Primal–dual stopping rule: terminate once
    /// `lower ≥ (1 − gap) · upper`, where `upper` is the dual length bound
    /// evaluated at each phase end. This is what makes large instances
    /// tractable; set to 0.0 to run to the full worst-case phase count.
    pub gap: f64,
    /// Safety cap on phases (the theory bound is ~log(m)/ε²).
    pub max_phases: usize,
}

impl Default for GkOptions {
    fn default() -> Self {
        GkOptions {
            epsilon: 0.05,
            target: Some(1.0),
            gap: 0.05,
            max_phases: 2_000_000,
        }
    }
}

/// Result of the concurrent-flow computation.
#[derive(Clone, Debug)]
pub struct GkResult {
    /// Feasible concurrent throughput (primal lower bound): every
    /// commodity can route `throughput · demand` simultaneously.
    pub throughput: f64,
    /// Certified dual upper bound on the optimum (∞ if never evaluated).
    pub upper_bound: f64,
    /// Phases executed.
    pub phases: usize,
    /// Shortest-path computations performed (cost metric).
    pub dijkstra_calls: usize,
}

/// Runs Garg–Könemann on `net` for the given commodities.
///
/// Panics if any commodity endpoints coincide or demands are non-positive.
pub fn max_concurrent_flow(
    net: &FlowNetwork,
    commodities: &[Commodity],
    opts: GkOptions,
) -> GkResult {
    assert!(!commodities.is_empty(), "no commodities");
    for c in commodities {
        assert!(
            c.src != c.dst,
            "commodity with identical endpoints {}",
            c.src
        );
        assert!(c.demand > 0.0, "non-positive demand");
    }
    let eps = opts.epsilon;
    assert!(eps > 0.0 && eps < 0.5, "epsilon must be in (0, 0.5)");

    let m = net.num_arcs() as f64;
    let delta = (m / (1.0 - eps)).powf(-1.0 / eps);
    // Scaling factor turning raw routed flow into a feasible flow at any
    // point of the run: while D(l) < 1, every arc satisfies
    // l_e·c_e < 1, so its routed flow obeys Φ_e/c_e ≤ log_{1+ε}(1/(δ·c_e))
    // ≤ log_{1+ε}(1/(δ·c_min)).
    let c_min = net
        .arcs
        .iter()
        .map(|a| a.capacity)
        .fold(f64::INFINITY, f64::min);
    let scale = ((1.0 / (delta * c_min.min(1.0))).ln() / (1.0 + eps).ln()).max(1.0);
    // Exact feasibility scaling: routed flow divided by the worst arc
    // congestion is feasible by construction; it is far tighter than the
    // worst-case `scale` early in the run.
    let mut phi: Vec<f64> = vec![0.0; net.num_arcs()];

    let mut len: Vec<f64> = net.arcs.iter().map(|a| delta / a.capacity).collect();
    // D(l) = Σ_e c_e · l_e starts at m·δ and grows to 1.
    let mut d_val = m * delta;
    let mut routed: Vec<f64> = vec![0.0; commodities.len()];
    let mut phases = 0usize;
    let mut dijkstra_calls = 0usize;
    let mut upper_bound = f64::INFINITY;
    let mut scratch = crate::network::DijkstraScratch::new();

    'outer: while d_val < 1.0 && phases < opts.max_phases {
        phases += 1;
        for (j, c) in commodities.iter().enumerate() {
            let mut remaining = c.demand;
            while remaining > 1e-12 && d_val < 1.0 {
                dijkstra_calls += 1;
                if !net.shortest_path_to(c.src, c.dst, &len, &mut scratch) {
                    panic!("commodity {} -> {} is disconnected", c.src, c.dst);
                }
                let bottleneck = scratch
                    .path
                    .iter()
                    .map(|&ai| net.arcs[ai as usize].capacity)
                    .fold(f64::INFINITY, f64::min);
                let f = remaining.min(bottleneck);
                for &ai in &scratch.path {
                    let cap = net.arcs[ai as usize].capacity;
                    let old = len[ai as usize];
                    let new = old * (1.0 + eps * f / cap);
                    len[ai as usize] = new;
                    d_val += cap * (new - old);
                    phi[ai as usize] += f;
                }
                remaining -= f;
                routed[j] += f;
            }
            if d_val >= 1.0 {
                break 'outer;
            }
        }
        let congestion = phi
            .iter()
            .zip(&net.arcs)
            .map(|(f, a)| f / a.capacity)
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let lower = feasible_throughput(&routed, commodities, scale)
            .max(min_demand_ratio(&routed, commodities) / congestion);
        if let Some(target) = opts.target {
            if lower >= target {
                return GkResult {
                    throughput: lower,
                    upper_bound,
                    phases,
                    dijkstra_calls,
                };
            }
        }
        // Dual bound: for any positive lengths, OPT ≤ D(l) / Σ_j d_j·dist_j.
        let mut weighted_dist = 0.0;
        for c in commodities.iter() {
            dijkstra_calls += 1;
            assert!(net.shortest_path_to(c.src, c.dst, &len, &mut scratch));
            let dist: f64 = scratch.path.iter().map(|&ai| len[ai as usize]).sum();
            weighted_dist += c.demand * dist;
        }
        if weighted_dist > 0.0 {
            upper_bound = upper_bound.min(d_val / weighted_dist);
        }
        if opts.gap > 0.0 && lower >= (1.0 - opts.gap) * upper_bound {
            return GkResult {
                throughput: lower,
                upper_bound,
                phases,
                dijkstra_calls,
            };
        }
    }

    let congestion = phi
        .iter()
        .zip(&net.arcs)
        .map(|(f, a)| f / a.capacity)
        .fold(0.0f64, f64::max)
        .max(1e-300);
    GkResult {
        throughput: feasible_throughput(&routed, commodities, scale)
            .max(min_demand_ratio(&routed, commodities) / congestion),
        upper_bound,
        phases,
        dijkstra_calls,
    }
}

fn min_demand_ratio(routed: &[f64], commodities: &[Commodity]) -> f64 {
    routed
        .iter()
        .zip(commodities)
        .map(|(r, c)| r / c.demand)
        .fold(f64::INFINITY, f64::min)
}

fn feasible_throughput(routed: &[f64], commodities: &[Commodity], scale: f64) -> f64 {
    min_demand_ratio(routed, commodities) / scale
}

/// Per-server throughput for a rack-level traffic matrix on a topology
/// (the paper's §2.2 definition): each pair `(a, b)` is a commodity with
/// demand equal to the servers at rack `a`; the result is clamped to 1.0
/// (a server cannot exceed its line rate).
pub fn per_server_throughput(
    t: &dcn_topology::Topology,
    pairs: &[(u32, u32)],
    opts: GkOptions,
) -> f64 {
    let net = FlowNetwork::from_topology(t);
    let commodities: Vec<Commodity> = pairs
        .iter()
        .map(|&(a, b)| Commodity {
            src: a,
            dst: b,
            demand: t.servers_at(a) as f64,
        })
        .collect();
    max_concurrent_flow(&net, &commodities, opts)
        .throughput
        .min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Arc;
    use dcn_topology::{fattree::FatTree, NodeKind, Topology};

    fn opts(eps: f64) -> GkOptions {
        GkOptions {
            epsilon: eps,
            target: None,
            gap: 0.0,
            max_phases: 2_000_000,
        }
    }

    #[test]
    fn single_edge_single_commodity() {
        let net = FlowNetwork::from_arcs(
            2,
            vec![Arc {
                from: 0,
                to: 1,
                capacity: 1.0,
            }],
        );
        let r = max_concurrent_flow(
            &net,
            &[Commodity {
                src: 0,
                dst: 1,
                demand: 1.0,
            }],
            opts(0.03),
        );
        assert!(
            (r.throughput - 1.0).abs() < 0.12,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn two_commodities_share_edge() {
        let net = FlowNetwork::from_arcs(
            2,
            vec![Arc {
                from: 0,
                to: 1,
                capacity: 1.0,
            }],
        );
        let r = max_concurrent_flow(
            &net,
            &[
                Commodity {
                    src: 0,
                    dst: 1,
                    demand: 1.0,
                },
                Commodity {
                    src: 0,
                    dst: 1,
                    demand: 1.0,
                },
            ],
            opts(0.03),
        );
        assert!(
            (r.throughput - 0.5).abs() < 0.06,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn diamond_uses_both_paths() {
        let mut t = Topology::new("diamond");
        for _ in 0..4 {
            t.add_node(NodeKind::Tor, 1);
        }
        t.add_link(0, 1);
        t.add_link(0, 2);
        t.add_link(1, 3);
        t.add_link(2, 3);
        let net = FlowNetwork::from_topology(&t);
        let r = max_concurrent_flow(
            &net,
            &[Commodity {
                src: 0,
                dst: 3,
                demand: 2.0,
            }],
            opts(0.03),
        );
        assert!(
            (r.throughput - 1.0).abs() < 0.12,
            "throughput {}",
            r.throughput
        );
    }

    #[test]
    fn matches_dinic_on_single_commodity() {
        // Single-commodity concurrent flow with demand 1 equals max flow.
        let t = FatTree::full(4).build();
        let exact = crate::dinic::topology_max_flow(&t, 0, 2);
        let net = FlowNetwork::from_topology(&t);
        let r = max_concurrent_flow(
            &net,
            &[Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            }],
            opts(0.03),
        );
        assert!(
            r.throughput <= exact * 1.02 && r.throughput >= exact * 0.85,
            "gk {} vs dinic {exact}",
            r.throughput
        );
    }

    #[test]
    fn full_fat_tree_supports_rack_permutation() {
        // Full-bandwidth fat-tree: any rack permutation gets throughput 1.
        let t = FatTree::full(4).build();
        // ToRs are nodes {0,1}, {4,5}, {8,9}, {12,13} per pod.
        let pairs = vec![
            (0u32, 4u32),
            (4, 8),
            (8, 12),
            (12, 0),
            (1, 5),
            (5, 9),
            (9, 13),
            (13, 1),
        ];
        let lam = per_server_throughput(&t, &pairs, GkOptions::default());
        assert!(lam >= 0.95, "per-server throughput {lam}");
    }

    #[test]
    fn oversubscribed_fat_tree_halves_permutation_throughput() {
        // Observation 1: at 50% core, cross-pod permutations get ~0.5.
        let t = FatTree::oversubscribed_core(4, 1).build();
        let pairs = vec![
            (0u32, 4u32),
            (1, 5),
            (4, 8),
            (5, 9),
            (8, 12),
            (9, 13),
            (12, 0),
            (13, 1),
        ];
        let lam = per_server_throughput(
            &t,
            &pairs,
            GkOptions {
                target: None,
                ..Default::default()
            },
        );
        assert!(
            (lam - 0.5).abs() < 0.07,
            "per-server throughput {lam}, expected ~0.5"
        );
    }

    #[test]
    fn early_exit_caps_work() {
        // One rack pair on a full fat-tree: optimum is exactly 1.0; the
        // FPTAS must land within its (1−ε)³ guarantee and never exceed it.
        let t = FatTree::full(4).build();
        let pairs = vec![(0u32, 4u32)];
        let lam = per_server_throughput(&t, &pairs, GkOptions::default());
        assert!(
            (0.857..=1.0 + 1e-9).contains(&lam),
            "clamped throughput {lam}"
        );
    }

    #[test]
    #[should_panic]
    fn disconnected_commodity_panics() {
        let net = FlowNetwork::from_arcs(
            3,
            vec![Arc {
                from: 0,
                to: 1,
                capacity: 1.0,
            }],
        );
        max_concurrent_flow(
            &net,
            &[Commodity {
                src: 0,
                dst: 2,
                demand: 1.0,
            }],
            opts(0.1),
        );
    }
}
