//! Throughput upper bounds from Singla et al., *High Throughput Data Center
//! Topology Design* (NSDI 2014) — reference \[30\] of the paper. Used for the
//! *restricted dynamic* model (§4.1, §5): an upper bound on the performance
//! of **any** topology built with network degree `r` per ToR.

/// Lower bound on the average shortest-path distance of any `d`-regular
/// graph on `n` nodes (Moore-bound layering): from any node, at most `d`
/// nodes sit at distance 1, `d(d−1)` at distance 2, and so on.
pub fn moore_avg_distance(n: usize, d: usize) -> f64 {
    assert!(n >= 2, "need at least two nodes");
    assert!(d >= 1, "degree must be positive");
    let mut remaining = (n - 1) as f64;
    let mut at_dist = d as f64;
    let mut dist = 1u64;
    let mut total = 0.0;
    while remaining > 0.0 {
        let take = remaining.min(at_dist);
        total += take * dist as f64;
        remaining -= take;
        if d == 1 {
            // A 1-regular graph is a perfect matching; only one node is
            // reachable. Treat the rest as unreachable (infinite bound).
            if remaining > 0.0 {
                return f64::INFINITY;
            }
            break;
        }
        at_dist *= (d - 1) as f64;
        dist += 1;
    }
    total / (n - 1) as f64
}

/// Upper bound on per-server throughput for uniform (all-to-all) traffic
/// over `n_active` racks, each with `net_ports` network ports of unit
/// capacity and `servers` servers — for the *best possible* degree-limited
/// topology (\[30\]'s capacity/path-length argument):
///
/// `t ≤ net_ports / (servers · d̄_min(n_active, net_ports))`
///
/// The toy example of §4.1 (9 racks, 6 ports, 6 servers) yields 0.8,
/// matching the paper's "80% of full throughput".
pub fn restricted_dynamic_bound(n_active: usize, net_ports: usize, servers: usize) -> f64 {
    assert!(servers >= 1);
    if n_active < 2 {
        return 1.0;
    }
    let dbar = moore_avg_distance(n_active, net_ports);
    (net_ports as f64 / (servers as f64 * dbar)).min(1.0)
}

/// Throughput of the *unrestricted* dynamic model (§5): with `net_ports`
/// flexible ports and `servers` servers per ToR, and reconfiguration
/// overhead folded into `duty_cycle` ∈ (0, 1], per-server throughput is
/// `min(1, duty_cycle · net_ports / servers)` independent of the TM.
pub fn unrestricted_dynamic_throughput(net_ports: f64, servers: f64, duty_cycle: f64) -> f64 {
    assert!(duty_cycle > 0.0 && duty_cycle <= 1.0);
    (duty_cycle * net_ports / servers).min(1.0)
}

/// Generic capacity/path-length throughput upper bound for an arbitrary
/// topology and rack-level flows `(src, dst, demand)`: any routing spends
/// at least `dist(src,dst)` units of directed capacity per unit of flow,
/// so `t · Σ_f demand_f · dist_f ≤ 2 · Σ_links capacity`.
pub fn capacity_path_bound(t: &dcn_topology::Topology, flows: &[(u32, u32, f64)]) -> f64 {
    let apsp = t.apsp();
    let mut weighted_dist = 0.0;
    for &(s, d, dem) in flows {
        let hops = apsp[s as usize][d as usize];
        assert!(hops != u32::MAX, "flow {s}->{d} disconnected");
        weighted_dist += dem * hops as f64;
    }
    if weighted_dist == 0.0 {
        return 1.0;
    }
    (2.0 * t.total_capacity() / weighted_dist).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::{NodeKind, Topology};

    #[test]
    fn moore_small_cases() {
        // 9 nodes, degree 6: 6 at distance 1, 2 at distance 2 ⇒ 10/8.
        assert!((moore_avg_distance(9, 6) - 1.25).abs() < 1e-12);
        // Complete graph: everything at distance 1.
        assert_eq!(moore_avg_distance(5, 4), 1.0);
    }

    #[test]
    fn moore_monotone_in_degree() {
        let mut last = f64::INFINITY;
        for d in 2..10 {
            let v = moore_avg_distance(100, d);
            assert!(v <= last);
            last = v;
        }
    }

    #[test]
    fn toy_example_bound_is_80_percent() {
        // §4.1: "upper bounded (computed as in [30]) at 80%".
        let b = restricted_dynamic_bound(9, 6, 6);
        assert!((b - 0.8).abs() < 1e-12, "bound {b}");
    }

    #[test]
    fn unrestricted_matches_paper_formula() {
        // §5: per-server throughput min(1, r/s).
        assert!((unrestricted_dynamic_throughput(16.0, 24.0, 1.0) - 16.0 / 24.0).abs() < 1e-12);
        assert_eq!(unrestricted_dynamic_throughput(16.0, 8.0, 1.0), 1.0);
        // ProjecToR's duty cycle: "could achieve 90% of full throughput".
        assert!((unrestricted_dynamic_throughput(6.0, 6.0, 0.9) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn capacity_bound_ring() {
        // 4-cycle, one cross-pair flow of demand 1 at distance 2:
        // bound = 2·4 / 2 = 4 → clamped to 1.
        let mut t = Topology::new("c4");
        for _ in 0..4 {
            t.add_node(NodeKind::Tor, 1);
        }
        for i in 0..4u32 {
            t.add_link(i, (i + 1) % 4);
        }
        assert_eq!(capacity_path_bound(&t, &[(0, 2, 1.0)]), 1.0);
        // Saturate: 8 units of demand at distance 2 ⇒ bound 0.5.
        let flows: Vec<_> = (0..8).map(|_| (0u32, 2u32, 1.0)).collect();
        assert!((capacity_path_bound(&t, &flows) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn moore_degree_one() {
        assert_eq!(moore_avg_distance(2, 1), 1.0);
        assert!(moore_avg_distance(4, 1).is_infinite());
    }

    #[test]
    fn bound_tightens_with_more_racks() {
        let few = restricted_dynamic_bound(9, 6, 6);
        let many = restricted_dynamic_bound(100, 6, 6);
        assert!(many < few);
    }
}
