//! Abstract models of dynamic (reconfigurable) topologies, per §4:
//!
//! - **Unrestricted**: any ToR may connect to any ToR, reconfiguration is
//!   free, buffering unlimited. Per-server throughput is
//!   `min(1, duty · r/s)` regardless of the traffic matrix.
//! - **Restricted**: direct-connection heuristics and no buffering — the
//!   network degenerates to the best *static* degree-r graph over the
//!   active racks, upper-bounded via the Moore-bound argument of \[30\].

use dcn_maxflow::bound::{restricted_dynamic_bound, unrestricted_dynamic_throughput};

/// The unrestricted dynamic model (§4, §5).
#[derive(Clone, Copy, Debug)]
pub struct UnrestrictedDynamic {
    /// Flexible network ports per ToR.
    pub net_ports: f64,
    /// Servers per ToR.
    pub servers: f64,
    /// Fraction of time links carry traffic (1.0 = ignore reconfiguration;
    /// ProjecToR's recommended duty cycle is ≈ 0.9).
    pub duty_cycle: f64,
}

impl UnrestrictedDynamic {
    /// Equal-cost configuration versus a static network with `static_ports`
    /// network ports per ToR: the dynamic design affords only
    /// `static_ports / δ` flexible ports (§4: δ = 1.5 at the low estimate).
    pub fn equal_cost(static_ports: f64, servers: f64, delta: f64) -> Self {
        UnrestrictedDynamic {
            net_ports: static_ports / delta,
            servers,
            duty_cycle: 1.0,
        }
    }

    /// Per-server throughput — independent of the TM and of how many racks
    /// participate (§5).
    pub fn throughput(&self) -> f64 {
        unrestricted_dynamic_throughput(self.net_ports, self.servers, self.duty_cycle)
    }
}

/// The restricted dynamic model (§4.1, §5): an upper bound on any topology
/// the direct-connection heuristic can form over the active racks.
#[derive(Clone, Copy, Debug)]
pub struct RestrictedDynamic {
    pub net_ports: usize,
    pub servers: usize,
}

impl RestrictedDynamic {
    pub fn equal_cost(static_ports: f64, servers: usize, delta: f64) -> Self {
        RestrictedDynamic {
            net_ports: (static_ports / delta).floor() as usize,
            servers,
        }
    }

    /// Throughput upper bound when `active_racks` racks participate.
    pub fn throughput_bound(&self, active_racks: usize) -> f64 {
        restricted_dynamic_bound(active_racks, self.net_ports, self.servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_slimfly_config() {
        // Fig 5a: static SlimFly has 25 net ports, 24 servers per ToR;
        // at δ=1.5 the dynamic design gets 16.67 ports → t ≈ 0.69.
        let dyn_net = UnrestrictedDynamic::equal_cost(25.0, 24.0, 1.5);
        let t = dyn_net.throughput();
        assert!((t - 25.0 / 1.5 / 24.0).abs() < 1e-12);
        assert!(t > 0.69 && t < 0.70);
    }

    #[test]
    fn unrestricted_at_delta_one_wins() {
        // "if there were no additional cost for flexibility, i.e. δ = 1,
        // unrestricted dynamic networks would … achieve full throughput".
        let dyn_net = UnrestrictedDynamic::equal_cost(25.0, 24.0, 1.0);
        assert_eq!(dyn_net.throughput(), 1.0);
    }

    #[test]
    fn duty_cycle_scales_throughput() {
        let d = UnrestrictedDynamic {
            net_ports: 8.0,
            servers: 8.0,
            duty_cycle: 0.9,
        };
        assert!((d.throughput() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn restricted_toy_example() {
        // §4.1: 9 racks, 6 ports, 6 servers → 80%.
        let r = RestrictedDynamic {
            net_ports: 6,
            servers: 6,
        };
        assert!((r.throughput_bound(9) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn restricted_worsens_with_more_active_racks() {
        let r = RestrictedDynamic::equal_cost(25.0, 24, 1.5);
        assert_eq!(r.net_ports, 16);
        let few = r.throughput_bound(20);
        let many = r.throughput_bound(500);
        assert!(many < few);
        assert!(
            many < 0.5,
            "restricted bound should be low at scale: {many}"
        );
    }
}
