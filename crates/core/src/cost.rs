//! The paper's cost model (Table 1 and §4): per-port component costs for
//! static and dynamic networks, the flexible-port cost factor δ, and
//! equal-cost network configuration.

use dcn_topology::fattree::FatTree;
use dcn_topology::xpander::Xpander;

/// Cost breakdown of one network port, in dollars (Table 1; component
/// costs from ProjecToR).
#[derive(Clone, Debug, PartialEq)]
pub struct PortCost {
    pub design: &'static str,
    pub components: Vec<(&'static str, f64, f64)>, // (name, low, high)
}

impl PortCost {
    pub fn total(&self) -> (f64, f64) {
        self.components
            .iter()
            .fold((0.0, 0.0), |(l, h), c| (l + c.1, h + c.2))
    }
}

/// Table 1: cost per network port for static, FireFly, and ProjecToR
/// designs. Each static cable (300 m at $0.3/m) is shared over two ports.
pub fn table1() -> Vec<PortCost> {
    vec![
        PortCost {
            design: "Static",
            components: vec![
                ("SR transceiver", 80.0, 80.0),
                ("Optical cable ($0.3/m, 300m / 2 ports)", 45.0, 45.0),
                ("ToR port", 90.0, 90.0),
            ],
        },
        PortCost {
            design: "FireFly",
            components: vec![
                ("SR transceiver", 80.0, 80.0),
                ("ToR port", 90.0, 90.0),
                ("Galvo mirror", 200.0, 200.0),
            ],
        },
        PortCost {
            design: "ProjecToR",
            components: vec![
                ("ToR port", 90.0, 90.0),
                ("ProjecToR Tx+Rx", 80.0, 180.0),
                ("DMD", 100.0, 100.0),
                ("Mirror assembly, lens", 50.0, 50.0),
            ],
        },
    ]
}

/// δ: the cost of a flexible port normalized to a static port, using the
/// *lowest* dynamic estimate — the paper's conservative choice yielding 1.5.
pub fn delta_lowest() -> f64 {
    let t = table1();
    let static_cost = t[0].total().0;
    let dynamic_low = t[1..]
        .iter()
        .map(|p| p.total().0)
        .fold(f64::INFINITY, f64::min);
    dynamic_low / static_cost
}

/// Network cost in "port dollars": switches' ports at the static per-port
/// price. The paper equalizes *total expense on ports* (§4).
pub fn switch_port_cost(num_switches: usize, ports_per_switch: u32) -> f64 {
    let static_port = table1()[0].total().0;
    num_switches as f64 * ports_per_switch as f64 * static_port
}

/// Derives an equal-cost Xpander for a fat-tree baseline: a switch budget
/// of `cost_fraction` × the fat-tree's switches (same port count per
/// switch, so port-cost scales identically), split into server and network
/// ports so all the fat-tree's servers fit.
///
/// Returns `None` when no valid split exists (the switch count must be a
/// multiple of `net_degree + 1` after rounding down).
pub fn equal_cost_xpander(ft: &FatTree, cost_fraction: f64, seed: u64) -> Option<Xpander> {
    assert!(cost_fraction > 0.0 && cost_fraction <= 1.0);
    let budget = (ft.num_switches() as f64 * cost_fraction).floor() as u32;
    let k = ft.k;
    let servers_needed = ft.num_servers() as u32;
    // Fewest server ports that still host every server.
    let s_min = servers_needed.div_ceil(budget);
    for s in s_min..k {
        let d = k - s;
        if d < 3 {
            break; // too few network ports to be an expander
        }
        let meta = d + 1;
        let switches = budget - budget % meta; // round down to a valid lift
        if switches >= meta * 2 && switches * s >= servers_needed {
            return Some(Xpander::new(d, switches / meta, s, seed));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_paper() {
        let t = table1();
        assert_eq!(t[0].total(), (215.0, 215.0));
        assert_eq!(t[1].total(), (370.0, 370.0));
        assert_eq!(t[2].total(), (320.0, 420.0));
    }

    #[test]
    fn delta_is_about_1_5() {
        // Paper: "the lowest estimates imply δ = 1.5" (320/215 ≈ 1.488).
        let d = delta_lowest();
        assert!((d - 1.5).abs() < 0.02, "δ = {d}");
    }

    #[test]
    fn port_cost_scales_linearly() {
        assert_eq!(switch_port_cost(2, 10), 2.0 * 10.0 * 215.0);
    }

    #[test]
    fn paper_sec6_xpander_is_equal_cost_at_two_thirds() {
        // §6.4: fat-tree k=16 (320 switches) vs Xpander with 216 switches
        // of the same port count — 33% lower cost.
        let ft = FatTree::full(16);
        let xp = equal_cost_xpander(&ft, 216.0 / 320.0, 1).expect("xpander exists");
        assert_eq!(xp.num_switches(), 216);
        assert_eq!(xp.net_degree + xp.servers_per_switch, 16);
        assert!(xp.num_servers() >= ft.num_servers());
        let ratio =
            switch_port_cost(xp.num_switches(), 16) / switch_port_cost(ft.num_switches(), 16);
        assert!((ratio - 0.675).abs() < 0.01, "cost ratio {ratio}");
    }

    #[test]
    fn half_cost_fat_tree_k20_matches_fig6() {
        // Fig 6a: k=20 fat-tree has 500 switches and 2000 servers; an
        // equal-server Jellyfish/Xpander at 50% switches must exist.
        let ft = FatTree::full(20);
        assert_eq!(ft.num_switches(), 500);
        assert_eq!(ft.num_servers(), 2000);
        let xp = equal_cost_xpander(&ft, 0.5, 1).expect("xpander exists");
        assert!(xp.num_switches() <= 250);
        assert!(xp.num_servers() >= 2000);
    }

    #[test]
    fn impossible_budget_returns_none() {
        // 10% of a k=4 fat-tree leaves 2 switches — no expander fits.
        let ft = FatTree::full(4);
        assert!(equal_cost_xpander(&ft, 0.1, 0).is_none());
    }
}
