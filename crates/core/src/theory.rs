//! Numeric verification of the paper's §2 theory: Observation 1 (the
//! oversubscribed fat-tree bottleneck) and the scaling direction of
//! Lemma 2.2 / Theorem 2.1 (throughput cannot rise more than
//! proportionally as fewer servers participate).

use dcn_maxflow::concurrent::{max_concurrent_flow, per_server_throughput, Commodity, GkOptions};
use dcn_maxflow::network::FlowNetwork;
use dcn_rng::{Rng, SliceRandom};
use dcn_topology::fattree::{edge_switches_by_pod, FatTree};
use dcn_topology::Topology;
use dcn_workloads::fluid::FluidTm;

/// Concurrent throughput of a rack-level fluid TM (per unit of its
/// demands; with hose-normalized TMs this is per-server throughput).
/// Returns `(feasible, dual upper bound)`, both clamped to 1.
pub fn fluid_throughput(t: &Topology, tm: &FluidTm, opts: GkOptions) -> (f64, f64) {
    let commodities: Vec<Commodity> = tm
        .commodities
        .iter()
        .map(|&(s, d, dem)| Commodity {
            src: s,
            dst: d,
            demand: dem,
        })
        .collect();
    let net = FlowNetwork::from_topology(t);
    let r = max_concurrent_flow(&net, &commodities, opts);
    (r.throughput.min(1.0), r.upper_bound.min(1.0))
}

/// Observation 1, constructively: builds a fat-tree oversubscribed to
/// fraction `x` at the core and returns the achieved per-server throughput
/// of the hard two-pod TM (each server in pod 0 sends to a unique server
/// in pod 1 — expressed at rack granularity).
pub fn observation1_throughput(k: u32, core_per_group: u32) -> f64 {
    let ft = FatTree::oversubscribed_core(k, core_per_group);
    let t = ft.build();
    let pods = edge_switches_by_pod(k);
    let pairs: Vec<(u32, u32)> = pods[0]
        .iter()
        .zip(&pods[1])
        .flat_map(|(&a, &b)| [(a, b), (b, a)])
        .collect();
    per_server_throughput(
        &t,
        &pairs,
        GkOptions {
            epsilon: 0.03,
            ..Default::default()
        },
    )
}

/// The fraction of servers Observation 1's traffic matrix involves: 2/k.
pub fn observation1_fraction(k: u32) -> f64 {
    2.0 / k as f64
}

/// Empirical check of the Theorem 2.1 direction on a concrete topology:
/// samples `trials` random rack permutations over the full rack set and
/// over an `x` fraction, and returns `(t_full_min, t_frac_min)` — the
/// worst observed throughput in each regime. Theorem 2.1 implies
/// `t_full ≳ x · t_frac` (up to sampling and FPTAS slack).
pub fn permutation_scaling(t: &Topology, x: f64, trials: u32, seed: u64) -> (f64, f64) {
    let racks = t.tors_with_servers();
    let mut rng = Rng::seed_from_u64(seed);
    let opts = GkOptions {
        epsilon: 0.05,
        target: None,
        gap: 0.03,
        max_phases: 2_000_000,
    };
    let mut worst_full: f64 = 1.0;
    let mut worst_frac: f64 = 1.0;
    for _ in 0..trials {
        let mut full = racks.clone();
        full.shuffle(&mut rng);
        let pairs: Vec<(u32, u32)> = (0..full.len())
            .map(|i| (full[i], full[(i + 1) % full.len()]))
            .collect();
        worst_full = worst_full.min(per_server_throughput(t, &pairs, opts).min(1.0));

        let k = ((racks.len() as f64 * x).round() as usize).max(2);
        let mut sub = racks.clone();
        sub.shuffle(&mut rng);
        sub.truncate(k);
        let pairs: Vec<(u32, u32)> = (0..k).map(|i| (sub[i], sub[(i + 1) % k])).collect();
        worst_frac = worst_frac.min(per_server_throughput(t, &pairs, opts).min(1.0));
    }
    (worst_full, worst_frac)
}

/// Scaling audit for the non-permutation TM families of §2.2 (the paper
/// proves the permutation analogue for all-to-all, many-to-one, and
/// one-to-many): compares worst-case throughput over the full rack set
/// against an `x`-fraction subset. Returns `(t_full, t_frac)` per family
/// in the order [all-to-all, many-to-one, one-to-many].
pub fn tm_family_scaling(t: &Topology, x: f64, seed: u64) -> Vec<(f64, f64)> {
    use dcn_workloads::fluid;
    let racks = t.tors_with_servers();
    let k = ((racks.len() as f64 * x).round() as usize).clamp(2, racks.len());
    let mut rng = Rng::seed_from_u64(seed);
    let mut sub = racks.clone();
    sub.shuffle(&mut rng);
    sub.truncate(k);
    let opts = GkOptions {
        epsilon: 0.07,
        target: Some(1.0),
        gap: 0.05,
        max_phases: 1_000_000,
    };

    let eval = |tm: &FluidTm| fluid_throughput(t, tm, opts).0;
    vec![
        (
            eval(&fluid::all_to_all(t, &racks)),
            eval(&fluid::all_to_all(t, &sub)),
        ),
        (
            eval(&fluid::many_to_one(t, &racks[1..], racks[0])),
            eval(&fluid::many_to_one(t, &sub[1..], sub[0])),
        ),
        (
            eval(&fluid::one_to_many(t, racks[0], &racks[1..])),
            eval(&fluid::one_to_many(t, sub[0], &sub[1..])),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::jellyfish::Jellyfish;
    use dcn_workloads::fluid;

    #[test]
    fn observation1_k4_half_core() {
        // 50% core ⇒ the two-pod TM is capped at ~0.5 per server.
        let t = observation1_throughput(4, 1);
        assert!((t - 0.5).abs() < 0.06, "throughput {t}");
        assert!((observation1_fraction(4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn observation1_full_core_gets_line_rate() {
        let t = observation1_throughput(4, 2);
        assert!(t > 0.85, "throughput {t}");
    }

    #[test]
    fn observation1_quarter_core_k8() {
        // k=8 with 1 of 4 cores per group: x = 0.25.
        let t = observation1_throughput(8, 1);
        assert!((t - 0.25).abs() < 0.05, "throughput {t}");
    }

    #[test]
    fn fluid_tm_helper_consistent_with_pairs() {
        let t = Jellyfish::new(16, 4, 2, 1).build();
        let racks = t.tors_with_servers();
        let tm = fluid::permutation(&t, &racks, 2);
        let (lo, hi) = fluid_throughput(
            &t,
            &tm,
            GkOptions {
                epsilon: 0.05,
                target: None,
                gap: 0.03,
                max_phases: 1_000_000,
            },
        );
        assert!(lo > 0.0 && lo <= hi + 1e-9);
    }

    #[test]
    fn tm_families_scale_at_most_proportionally() {
        let t = Jellyfish::new(20, 4, 3, 5).build();
        for (full, frac) in tm_family_scaling(&t, 0.5, 3) {
            // Direction of Theorem 2.1's analogues, with FPTAS slack.
            assert!(full >= 0.5 * frac * 0.75, "full {full}, frac {frac}");
            assert!(frac >= full - 0.07, "subset TM should not be harder");
        }
    }

    #[test]
    fn permutation_scaling_direction_holds() {
        // Theorem 2.1: t_full ≳ x · t_frac on an expander (allowing FPTAS
        // + sampling slack).
        let t = Jellyfish::new(20, 4, 3, 5).build();
        let (full, frac) = permutation_scaling(&t, 0.5, 3, 7);
        assert!(
            full >= 0.5 * frac * 0.8,
            "scaling violated: full {full}, frac {frac}"
        );
        assert!(frac >= full - 0.05, "smaller TMs should not be harder");
    }
}
