//! # dcn-core
//!
//! The core contribution of *"Beyond fat-trees without antennae, mirrors,
//! and disco-balls"* (SIGCOMM 2017) as a library:
//!
//! - [`flex`] — the throughput-proportionality (TP) flexibility metric (§2.2);
//! - [`theory`] — numeric checks of Observation 1 and the Theorem 2.1
//!   scaling direction;
//! - [`dynamicnet`] — the abstract unrestricted/restricted dynamic-topology
//!   models (§4) compared against static networks in §5;
//! - [`cost`] — the Table 1 port-cost model, δ = 1.5, and equal-cost
//!   network configuration;
//! - [`experiment`] — the §6.4 equal-cost network pairs and one-call FCT
//!   experiment runner used by every figure harness.
//!
//! ```
//! use dcn_core::flex::tp_throughput;
//! use dcn_core::cost::delta_lowest;
//!
//! assert_eq!(tp_throughput(0.5, 0.5), 1.0);
//! assert!((delta_lowest() - 1.5).abs() < 0.02);
//! ```

pub mod cost;
pub mod dynamicnet;
pub mod experiment;
pub mod failpoint;
pub mod flex;
pub mod fsio;
pub mod manifest;
pub mod theory;

pub use cost::{delta_lowest, equal_cost_xpander, table1};
pub use dynamicnet::{RestrictedDynamic, UnrestrictedDynamic};
pub use experiment::{
    default_window, paper_networks, run_fct_experiment, run_fct_experiment_instrumented,
    run_fct_experiment_traced, run_fct_experiment_with_faults, NetworkPair, Routing, Scale,
    SimCounters,
};
pub use flex::{fat_tree_throughput, tp_throughput, FlexCurve};
pub use fsio::{fsync_parent_dir, write_atomic};
pub use manifest::{ManifestSpec, RunManifest, WALL_CLOCK_FIELDS};
