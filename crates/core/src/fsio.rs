//! Crash-safe file output.
//!
//! Every artifact the harnesses persist — run manifests, figure JSON,
//! supervisor reports — goes through [`write_atomic`]: the bytes stream
//! into a sibling `<path>.tmp`, are flushed and fsync'd, and only then
//! renamed over the final path. A crash mid-write can leave a stale
//! temporary behind, but never a truncated or interleaved file at the
//! advertised location — the invariant `dcnrun`'s salvage step and any
//! downstream tooling rely on.

use std::io::{self, Write};
use std::path::Path;

use crate::failpoint;

/// Writes `bytes` to `path` atomically: temporary + flush + fsync +
/// rename + parent-directory fsync. The temporary lives next to the
/// target (`<path>.tmp`) so the rename stays within one filesystem.
///
/// Every step of the ladder carries a failpoint site (`fsio.tmp_create`,
/// `fsio.tmp_write` — partial-capable, `fsio.tmp_fsync`, `fsio.rename`,
/// `fsio.dir_fsync`); the crash-consistency harness arms each one and
/// asserts the target is never torn: a failure before the rename leaves
/// the old content whole, and only a completed rename exposes the new
/// bytes.
pub fn write_atomic<P: AsRef<Path>>(path: P, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    failpoint::fail_io("fsio.tmp_create")?;
    let mut f = std::fs::File::create(&tmp)?;
    match failpoint::partial_write("fsio.tmp_write")? {
        // A torn write: persist only the first n bytes of the payload,
        // then report failure — the temporary is left truncated, the
        // target untouched.
        Some(n) => {
            let n = (n as usize).min(bytes.len());
            f.write_all(&bytes[..n])?;
            let _ = f.flush();
            return Err(io::Error::other("injected failpoint: torn tmp write"));
        }
        None => f.write_all(bytes)?,
    }
    f.flush()?;
    failpoint::fail_io("fsio.tmp_fsync")?;
    f.sync_all()?;
    failpoint::fail_io("fsio.rename")?;
    std::fs::rename(&tmp, path)?;
    // The rename itself lives in the parent directory's entries; without
    // fsyncing those, a power loss can forget the rename and the file
    // "vanishes" even though its bytes were durable.
    failpoint::fail_io("fsio.dir_fsync")?;
    fsync_parent_dir(path)
}

/// Fsyncs the directory containing `path` so a just-renamed entry
/// survives power loss. A path with no parent component ("bare.json")
/// syncs the current directory. Platforms where directories cannot be
/// opened for fsync (non-unix) skip silently — the rename is still
/// atomic, just not durably ordered.
pub fn fsync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn writes_bytes_and_removes_temporary() {
        let p = tmp("fsio_roundtrip.json");
        write_atomic(&p, b"{\"ok\": true}\n").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"{\"ok\": true}\n");
        assert!(!p.with_extension("json.tmp").exists());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn replaces_existing_content_whole() {
        let p = tmp("fsio_replace.json");
        write_atomic(&p, b"a much longer first version of the file").unwrap();
        write_atomic(&p, b"short").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"short");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn missing_parent_directory_errors() {
        let p = tmp("no_such_dir_fsio").join("out.json");
        assert!(write_atomic(&p, b"x").is_err());
    }

    #[test]
    fn renamed_file_parent_directory_is_synced() {
        // The durability path: a rename into a freshly created directory
        // must be followed by an fsync of that directory, and the write
        // must still succeed end to end.
        let dir = tmp("fsio_parent_sync_dir");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("artifact.json");
        write_atomic(&p, b"durable").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"durable");
        assert!(!dir.join("artifact.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_parent_handles_bare_and_nested_paths() {
        // A bare filename has parent "" — must map to "." and succeed.
        assert!(fsync_parent_dir(Path::new("bare.json")).is_ok());
        let dir = tmp("fsio_fsync_parent");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(fsync_parent_dir(&dir.join("x")).is_ok());
        // A parent that does not exist is an error, not a silent skip.
        assert!(fsync_parent_dir(&tmp("no_such_fsio_parent").join("x")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
