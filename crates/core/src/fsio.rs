//! Crash-safe file output.
//!
//! Every artifact the harnesses persist — run manifests, figure JSON,
//! supervisor reports — goes through [`write_atomic`]: the bytes stream
//! into a sibling `<path>.tmp`, are flushed and fsync'd, and only then
//! renamed over the final path. A crash mid-write can leave a stale
//! temporary behind, but never a truncated or interleaved file at the
//! advertised location — the invariant `dcnrun`'s salvage step and any
//! downstream tooling rely on.

use std::io::{self, Write};
use std::path::Path;

/// Writes `bytes` to `path` atomically: temporary + flush + fsync +
/// rename. The temporary lives next to the target (`<path>.tmp`) so the
/// rename stays within one filesystem.
pub fn write_atomic<P: AsRef<Path>>(path: P, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.flush()?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn writes_bytes_and_removes_temporary() {
        let p = tmp("fsio_roundtrip.json");
        write_atomic(&p, b"{\"ok\": true}\n").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"{\"ok\": true}\n");
        assert!(!p.with_extension("json.tmp").exists());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn replaces_existing_content_whole() {
        let p = tmp("fsio_replace.json");
        write_atomic(&p, b"a much longer first version of the file").unwrap();
        write_atomic(&p, b"short").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"short");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn missing_parent_directory_errors() {
        let p = tmp("no_such_dir_fsio").join("out.json");
        assert!(write_atomic(&p, b"x").is_err());
    }
}
