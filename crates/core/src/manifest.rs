//! Run manifests: one `manifest.json` per experiment recording *what ran*
//! (config echo, seed, topology fingerprint, fault-plan digest), *what
//! happened* (flow outcomes, FCT histogram summary, packet conservation,
//! counters), and *what it cost* (events processed, peak heap, wall time).
//!
//! Manifests make result files self-describing: `dcnstat diff` compares
//! two of them field by field (ignoring wall-clock fields, which are not
//! deterministic) to assert that two runs simulated the same experiment —
//! the same-seed zero-drift check CI performs on every commit.
//!
//! All simulated quantities are deterministic: a same-seed run reproduces
//! every field except `wall_ms` / `events_per_sec_wall` and any caller
//! supplied output paths ([`WALL_CLOCK_FIELDS`]).

use std::io;
use std::time::Duration;

use crate::experiment::SimCounters;
use dcn_json::Json;
use dcn_sim::stats::FctDistributions;
use dcn_sim::{
    Conservation, EngineCounters, FaultPlan, Metrics, Ns, SimConfig, StreamingHistogram,
    WallClockCounters,
};
use dcn_topology::Topology;

/// Manifest fields that legitimately differ between two identical-seed
/// runs: wall-clock measurements and caller-chosen output paths.
/// `dcnstat diff` skips exactly these (at any nesting depth — the last
/// three are the wall-clock leaves of the `engine` counter block).
pub const WALL_CLOCK_FIELDS: &[&str] = &[
    "wall_ms",
    "events_per_sec_wall",
    "trace_path",
    "telemetry_path",
    "drain_ns",
    "barrier_wait_ns",
    "mailbox_flush_ns",
];

/// What the caller wants recorded about a run: tool identity, workload
/// seed, and the observability side-channels in use.
#[derive(Clone, Debug, Default)]
pub struct ManifestSpec {
    /// The producing binary (`dcnsim`, `fig9_a2a_sweep`, ...).
    pub tool: String,
    /// Workload / experiment seed.
    pub seed: u64,
    /// Trace JSONL path, when tracing to a file.
    pub trace_path: Option<String>,
}

impl ManifestSpec {
    pub fn new(tool: &str, seed: u64) -> Self {
        ManifestSpec {
            tool: tool.to_string(),
            seed,
            trace_path: None,
        }
    }
}

/// Everything [`RunManifest::build`] folds into the manifest; assembled by
/// `run_fct_experiment_instrumented`.
pub struct ManifestInputs<'a> {
    pub spec: &'a ManifestSpec,
    pub topology: &'a Topology,
    pub routing_label: &'static str,
    pub cfg: &'a SimConfig,
    pub window: (Ns, Ns),
    pub faults: Option<&'a FaultPlan>,
    /// Flows injected into the simulator (the window subset is measured).
    pub injected: usize,
    pub metrics: &'a Metrics,
    pub dists: &'a FctDistributions,
    pub counters: &'a SimCounters,
    /// The engine's deterministic self-observability counters
    /// (per-shard events, cross-shard traffic, calendar/arena behavior).
    pub engine: &'a EngineCounters,
    /// The engine's wall-clock counter set; zeros unless the run enabled
    /// `SimConfig::wall_counters`. Rendered under [`WALL_CLOCK_FIELDS`]
    /// names so `dcnstat diff` skips them.
    pub engine_wall: &'a WallClockCounters,
    pub conservation: Conservation,
    pub peak_heap: usize,
    pub wall: Duration,
    /// `(samples_written, sample_every_ns, path)` when telemetry ran.
    pub telemetry: Option<(u64, Ns, Option<String>)>,
}

/// A finished run's manifest; a thin wrapper over its [`Json`] document.
#[derive(Clone, Debug)]
pub struct RunManifest {
    json: Json,
}

fn hex64(v: u64) -> Json {
    Json::from(format!("{v:016x}"))
}

fn opt_str(s: &Option<String>) -> Json {
    match s {
        Some(s) => Json::from(s.as_str()),
        None => Json::Null,
    }
}

/// Histogram summary object: count/min/percentiles/max in integer ns plus
/// the exact mean.
fn hist_json(h: &StreamingHistogram) -> Json {
    Json::obj(vec![
        ("count", Json::from(h.count())),
        ("min_ns", Json::from(h.min())),
        ("p50_ns", Json::from(h.value_at_percentile(0.50))),
        ("p90_ns", Json::from(h.value_at_percentile(0.90))),
        ("p99_ns", Json::from(h.value_at_percentile(0.99))),
        ("max_ns", Json::from(h.max())),
        ("mean_ns", Json::from(h.mean())),
    ])
}

impl RunManifest {
    /// Assembles the manifest document from a finished run.
    pub fn build(inp: &ManifestInputs) -> RunManifest {
        let t = inp.topology;
        let cfg = inp.cfg;
        let m = inp.metrics;
        let c = inp.counters;
        let cons = &inp.conservation;

        let topology = Json::obj(vec![
            ("name", Json::from(t.name())),
            ("switches", Json::from(t.num_nodes())),
            ("servers", Json::from(t.num_servers())),
            ("links", Json::from(t.num_links())),
            ("fingerprint", hex64(t.fingerprint())),
        ]);
        let config = Json::obj(vec![
            ("link_gbps", Json::from(cfg.link_gbps)),
            ("server_link_gbps", Json::from(cfg.server_link_gbps)),
            ("prop_delay_ns", Json::from(cfg.prop_delay_ns)),
            ("queue_pkts", Json::from(cfg.queue_pkts)),
            ("ecn_k_pkts", Json::from(cfg.ecn_k_pkts)),
            ("flowlet_gap_ns", Json::from(cfg.flowlet_gap_ns)),
            ("mtu", Json::from(cfg.mtu)),
            ("mss", Json::from(cfg.mss)),
            ("ack_bytes", Json::from(cfg.ack_bytes)),
            ("init_cwnd_pkts", Json::from(cfg.init_cwnd_pkts)),
            ("min_rto_ns", Json::from(cfg.min_rto_ns)),
            ("dctcp_g", Json::from(cfg.dctcp_g)),
            ("host_queue_pkts", Json::from(cfg.host_queue_pkts)),
            ("pfabric_cwnd_pkts", Json::from(cfg.pfabric_cwnd_pkts)),
            ("reconverge_delay_ns", Json::from(cfg.reconverge_delay_ns)),
            ("max_events", Json::from(cfg.max_events)),
        ]);
        let faults = match inp.faults {
            Some(p) => Json::obj(vec![
                ("events", Json::from(p.events().len())),
                ("seed", Json::from(p.seed)),
                ("digest", hex64(p.digest())),
            ]),
            None => Json::Null,
        };
        let flows = Json::obj(vec![
            ("injected", Json::from(inp.injected)),
            ("measured", Json::from(m.flows)),
            ("completed", Json::from(m.completed)),
            ("failed", Json::from(m.failed)),
            ("recovered", Json::from(m.recovered_flows)),
            ("short", Json::from(m.short_flows)),
            ("long", Json::from(m.long_flows)),
        ]);
        let metrics = Json::obj(vec![
            ("avg_fct_ms", Json::from(m.avg_fct_ms)),
            ("p99_short_fct_ms", Json::from(m.p99_short_fct_ms)),
            ("avg_long_tput_gbps", Json::from(m.avg_long_tput_gbps)),
            ("avg_recovery_ms", Json::from(m.avg_recovery_ms)),
        ]);
        let fct_hist = Json::obj(vec![
            ("all", hist_json(&inp.dists.all)),
            ("short", hist_json(&inp.dists.short)),
            ("long", hist_json(&inp.dists.long)),
        ]);
        let conservation = Json::obj(vec![
            ("sent", Json::from(cons.sent)),
            ("delivered", Json::from(cons.delivered)),
            ("dropped", Json::from(cons.dropped)),
            ("in_flight", Json::from(cons.in_flight)),
        ]);
        let counters = Json::obj(vec![
            ("congestion_drops", Json::from(c.congestion_drops)),
            ("fault_drops", Json::from(c.fault_drops)),
            ("ecn_marks", Json::from(c.ecn_marks)),
        ]);
        let eng = inp.engine;
        let shards = Json::Arr(
            eng.shards
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("events", Json::from(s.events)),
                        (
                            "cross_shard",
                            Json::Arr(s.cross_shard_sent.iter().map(|&v| Json::from(v)).collect()),
                        ),
                        ("calendar_peak", Json::from(s.calendar_peak)),
                        ("ladder_spills", Json::from(s.ladder_spills)),
                        ("scatter_fallbacks", Json::from(s.scatter_fallbacks)),
                        ("arena_live", Json::from(s.arena_live)),
                        ("arena_high_water", Json::from(s.arena_high_water)),
                    ])
                })
                .collect(),
        );
        let wall = inp.engine_wall;
        let engine = Json::obj(vec![
            ("epochs", Json::from(eng.epochs)),
            ("merge_ties", Json::from(eng.merge_ties)),
            ("events_total", Json::from(eng.events_total())),
            ("cross_shard_total", Json::from(eng.cross_shard_total())),
            ("imbalance", Json::from(eng.imbalance())),
            ("shards", shards),
            // Wall-clock leaves, named exactly as in WALL_CLOCK_FIELDS so
            // dcnstat diff ignores them wherever they nest.
            (
                "drain_ns",
                Json::Arr(wall.drain_ns.iter().map(|&v| Json::from(v)).collect()),
            ),
            ("barrier_wait_ns", Json::from(wall.barrier_wait_ns)),
            ("mailbox_flush_ns", Json::from(wall.mailbox_flush_ns)),
        ]);
        let telemetry = match &inp.telemetry {
            Some((samples, every, path)) => Json::obj(vec![
                ("samples", Json::from(*samples)),
                ("sample_every_ns", Json::from(*every)),
                ("path", opt_str(path)),
            ]),
            None => Json::Null,
        };
        let wall_ms = inp.wall.as_secs_f64() * 1e3;
        let eps_wall = if inp.wall.as_nanos() > 0 {
            c.events as f64 / inp.wall.as_secs_f64()
        } else {
            0.0
        };

        RunManifest {
            json: Json::obj(vec![
                ("schema", Json::from(1u32)),
                ("tool", Json::from(inp.spec.tool.as_str())),
                ("seed", Json::from(inp.spec.seed)),
                ("topology", topology),
                ("routing", Json::from(inp.routing_label)),
                ("transport", Json::from(cfg.transport.name())),
                ("queue_disc", Json::from(cfg.queue_disc.name())),
                ("config", config),
                (
                    "window_ns",
                    Json::Arr(vec![Json::from(inp.window.0), Json::from(inp.window.1)]),
                ),
                ("faults", faults),
                ("flows", flows),
                ("metrics", metrics),
                ("fct_hist", fct_hist),
                ("conservation", conservation),
                ("counters", counters),
                ("engine", engine),
                ("events_processed", Json::from(c.events)),
                ("peak_heap", Json::from(inp.peak_heap)),
                ("wall_ms", Json::from(wall_ms)),
                ("events_per_sec_wall", Json::from(eps_wall)),
                ("trace_path", opt_str(&inp.spec.trace_path)),
                (
                    "telemetry_path",
                    match &inp.telemetry {
                        Some((_, _, p)) => opt_str(p),
                        None => Json::Null,
                    },
                ),
                ("telemetry", telemetry),
            ]),
        }
    }

    /// The manifest document.
    pub fn json(&self) -> &Json {
        &self.json
    }

    /// A top-level field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.json.get(key)
    }

    /// Pretty-printed JSON with a trailing newline (the on-disk format).
    pub fn render(&self) -> String {
        let mut s = self.json.pretty();
        s.push('\n');
        s
    }

    /// Writes the manifest to `path` atomically (temporary + rename), so
    /// a crash mid-write never leaves a truncated manifest behind.
    pub fn write(&self, path: &str) -> io::Result<()> {
        crate::fsio::write_atomic(path, self.render().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex64_is_fixed_width() {
        assert_eq!(hex64(0).to_string(), "\"0000000000000000\"");
        assert_eq!(hex64(u64::MAX).to_string(), "\"ffffffffffffffff\"");
    }

    #[test]
    fn wall_clock_fields_cover_paths() {
        for f in ["wall_ms", "events_per_sec_wall", "trace_path"] {
            assert!(WALL_CLOCK_FIELDS.contains(&f));
        }
    }

    #[test]
    fn wall_clock_fields_cover_engine_counter_leaves() {
        // The engine's wall-clock counter leaves must be diff-ignored,
        // and the two lists must agree on their names.
        for f in dcn_sim::WALL_CLOCK_COUNTER_FIELDS {
            assert!(WALL_CLOCK_FIELDS.contains(&f), "missing {f}");
        }
    }
}
