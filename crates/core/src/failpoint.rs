//! Deterministic failpoints: a hermetic, dependency-free fault-injection
//! registry for the durability and I/O boundaries of the stack.
//!
//! The paper's robustness claim is about *network* component failure; the
//! serving stack around the simulator additionally has to survive
//! *infrastructure* failure — full disks, torn renames, failed fsyncs,
//! short socket writes, workers that cannot even be spawned. Failpoints
//! make those ugly partial-failure modes reproducible: every durability
//! boundary declares a **named site** (the full catalog is [`SITES`]),
//! and a site can be *armed* with a spec describing when and how to fail.
//!
//! ## Arming
//!
//! From the environment (read once, on the first check):
//!
//! ```text
//! DCN_FAILPOINTS="fsio.rename=err;cache.store=enospc;ckpt.save.write=50%kill"
//! DCN_FAILPOINTS_SEED=7        # seeds the probabilistic triggers
//! ```
//!
//! or programmatically — [`configure`] / [`disarm`] / [`disarm_all`] —
//! which is what the unit tests and the crash-consistency harness use.
//!
//! ## Spec grammar
//!
//! ```text
//! SPEC   := [skip(K):][P%][N*]ACTION
//! ACTION := off | err | enospc | eof | partial(N) | kill
//! ```
//!
//! - `skip(K):` — pass the first `K` hits untouched, then start evaluating;
//! - `P%` — trip with probability `P` per hit, drawn from a per-site
//!   deterministic RNG ([`dcn_rng`] xoshiro seeded from
//!   `DCN_FAILPOINTS_SEED ^ fnv1a(site)`), so a seeded run replays exactly;
//! - `N*` — trip at most `N` times, then the site goes quiet;
//! - `err` — a generic injected [`io::Error`] (kind `Other`);
//! - `enospc` — `ENOSPC`, the disk-full error (`StorageFull`);
//! - `eof` — `UnexpectedEof`, a peer vanishing mid-conversation;
//! - `partial(N)` — at write-shaped sites: persist only `N` bytes, then
//!   fail (a torn write); at sites with no partial interpretation it
//!   degrades to `err`;
//! - `kill` — terminate the process *without* unwinding (SIGKILL, falling
//!   back to abort), modelling power loss at exactly this boundary.
//!
//! ## Zero cost when disabled
//!
//! The disarmed fast path is one relaxed atomic load and a compare — no
//! locks, no allocation, no map lookup. `trace_overhead --check` gates
//! this: the disabled-check rate is blessed alongside the tracer
//! baselines and a regression fails CI.
//!
//! ## Recovery invariants
//!
//! Arming a site must never be able to produce a *corrupt* artifact that
//! is later trusted: `write_atomic` leaves the old file intact for every
//! pre-rename failure, checkpoints are checksummed and validated on load,
//! cache entries are verified on read and quarantined on mismatch. The
//! crash-consistency harness (`tests/crash_consistency.rs`) enumerates
//! [`SITES`] and asserts those invariants site by site.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use dcn_rng::Rng;

/// The full catalog of compiled-in failpoint sites. The crash-consistency
/// harness enumerates this list; adding a site without extending the
/// harness fails its coverage test.
pub const SITES: &[&str] = &[
    // fsio::write_atomic — the atomic-write ladder, in order.
    "fsio.tmp_create",
    "fsio.tmp_write",
    "fsio.tmp_fsync",
    "fsio.rename",
    "fsio.dir_fsync",
    // dcn-sim checkpoint save/load (threaded via checkpoint::install_io_hook).
    "ckpt.save.write",
    "ckpt.save.fsync",
    "ckpt.save.rename",
    "ckpt.load",
    // dcnserve artifact cache.
    "cache.read",
    "cache.store",
    "cache.quarantine",
    // dcnserve socket framing.
    "serve.sock_read",
    "serve.sock_write",
    // worker process management.
    "supervise.spawn",
];

/// What an armed site does when it trips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Generic injected I/O error.
    Err,
    /// `ENOSPC` — the disk is full.
    Enospc,
    /// `UnexpectedEof` — the peer vanished.
    Eof,
    /// Persist only this many bytes, then fail (a torn write).
    Partial(u64),
    /// Die without unwinding, like power loss at this exact boundary.
    Kill,
}

impl Action {
    /// The `io::Error` this action injects (not meaningful for `Kill`).
    fn to_io_error(self) -> io::Error {
        match self {
            Action::Enospc => io::Error::new(
                io::ErrorKind::StorageFull,
                "injected failpoint: no space left on device",
            ),
            Action::Eof => io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "injected failpoint: peer vanished",
            ),
            Action::Err | Action::Partial(_) | Action::Kill => {
                io::Error::other("injected failpoint")
            }
        }
    }
}

/// One armed site: the parsed spec plus its trigger state.
#[derive(Debug)]
struct Site {
    action: Action,
    /// Pass this many hits before evaluating at all.
    skip: u64,
    /// Trip probability in [0, 1]; 1.0 = always.
    prob: f64,
    /// Remaining trips (`u64::MAX` = unlimited).
    budget: u64,
    /// Per-site deterministic stream for probabilistic triggers.
    rng: Rng,
    hits: u64,
    trips: u64,
}

#[derive(Default)]
struct RegistryInner {
    sites: HashMap<String, Site>,
}

/// Tri-state arming flag: the only thing the disarmed fast path reads.
const ST_UNINIT: u8 = 2;
const ST_OFF: u8 = 0;
const ST_ON: u8 = 1;
static STATE: AtomicU8 = AtomicU8::new(ST_UNINIT);
static REGISTRY: Mutex<Option<RegistryInner>> = Mutex::new(None);
/// Process-wide trip counter, readable without the lock.
static TOTAL_TRIPS: AtomicU64 = AtomicU64::new(0);

/// FNV-1a — used to derive per-site RNG streams from the global seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Whether any site is currently armed. One relaxed load; this is the
/// cost every disarmed check pays.
#[inline]
pub fn armed() -> bool {
    STATE.load(Ordering::Relaxed) == ST_ON
}

/// Evaluates `site`. `None` = proceed normally; `Some(action)` = the site
/// tripped and the caller must apply `action`. `Kill` never returns.
#[inline]
pub fn check(site: &'static str) -> Option<Action> {
    match STATE.load(Ordering::Relaxed) {
        ST_OFF => None,
        _ => check_slow(site),
    }
}

#[cold]
fn check_slow(site: &str) -> Option<Action> {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let inner = ensure_init(&mut guard);
    let s = inner.sites.get_mut(site)?;
    s.hits += 1;
    if s.hits <= s.skip {
        return None;
    }
    if s.budget == 0 {
        return None;
    }
    if s.prob < 1.0 && s.rng.next_f64() >= s.prob {
        return None;
    }
    if s.budget != u64::MAX {
        s.budget -= 1;
    }
    s.trips += 1;
    TOTAL_TRIPS.fetch_add(1, Ordering::Relaxed);
    let action = s.action;
    drop(guard); // never die or unwind while holding the registry lock
    if action == Action::Kill {
        die();
    }
    Some(action)
}

/// Parses the environment on first use; returns the live registry.
fn ensure_init(guard: &mut Option<RegistryInner>) -> &mut RegistryInner {
    if guard.is_none() {
        let mut inner = RegistryInner::default();
        let seed = std::env::var("DCN_FAILPOINTS_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u64);
        if let Ok(spec) = std::env::var("DCN_FAILPOINTS") {
            for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
                match part.split_once('=') {
                    Some((site, spec)) => match parse_spec(spec.trim(), site.trim(), seed) {
                        Ok(Some(s)) => {
                            inner.sites.insert(site.trim().to_string(), s);
                        }
                        Ok(None) => {}
                        Err(e) => {
                            // Loud but non-fatal: a typo in the env must
                            // not take down a production daemon.
                            eprintln!("failpoint: ignoring {part:?}: {e}");
                        }
                    },
                    None => eprintln!("failpoint: ignoring {part:?}: expected SITE=SPEC"),
                }
            }
        }
        STATE.store(
            if inner.sites.is_empty() {
                ST_OFF
            } else {
                ST_ON
            },
            Ordering::SeqCst,
        );
        *guard = Some(inner);
    }
    guard.as_mut().unwrap()
}

/// Parses one spec: `[skip(K):][P%][N*]ACTION`. `Ok(None)` means `off`.
fn parse_spec(spec: &str, site: &str, seed: u64) -> Result<Option<Site>, String> {
    let mut rest = spec;
    let mut skip = 0u64;
    if let Some(tail) = rest.strip_prefix("skip(") {
        let (k, after) = tail
            .split_once("):")
            .ok_or_else(|| format!("malformed skip() in {spec:?}"))?;
        skip = k.parse().map_err(|_| format!("bad skip count {k:?}"))?;
        rest = after;
    }
    let mut prob = 1.0f64;
    if let Some((p, after)) = rest.split_once('%') {
        if p.chars().all(|c| c.is_ascii_digit() || c == '.') && !p.is_empty() {
            let pct: f64 = p.parse().map_err(|_| format!("bad percentage {p:?}"))?;
            prob = (pct / 100.0).clamp(0.0, 1.0);
            rest = after;
        }
    }
    let mut budget = u64::MAX;
    if let Some((n, after)) = rest.split_once('*') {
        if n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty() {
            budget = n.parse().map_err(|_| format!("bad trip limit {n:?}"))?;
            rest = after;
        }
    }
    let action = match rest {
        "off" => return Ok(None),
        "err" => Action::Err,
        "enospc" => Action::Enospc,
        "eof" => Action::Eof,
        "kill" => Action::Kill,
        _ => {
            if let Some(arg) = rest
                .strip_prefix("partial(")
                .and_then(|r| r.strip_suffix(')'))
            {
                Action::Partial(
                    arg.parse()
                        .map_err(|_| format!("bad partial() arg {arg:?}"))?,
                )
            } else {
                return Err(format!("unknown action {rest:?}"));
            }
        }
    };
    let mut stream = seed ^ fnv1a(site.as_bytes());
    let site_seed = dcn_rng::splitmix64(&mut stream);
    Ok(Some(Site {
        action,
        skip,
        prob,
        budget,
        rng: Rng::seed_from_u64(site_seed),
        hits: 0,
        trips: 0,
    }))
}

/// Arms (or re-arms) one site programmatically. Panics on a malformed
/// spec — programmatic callers are tests and harnesses, where a typo
/// should fail loudly.
pub fn configure(site: &str, spec: &str) {
    configure_seeded(site, spec, 0)
}

/// [`configure`] with an explicit seed for probabilistic triggers.
pub fn configure_seeded(site: &str, spec: &str, seed: u64) {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let inner = ensure_init(&mut guard);
    match parse_spec(spec, site, seed).unwrap_or_else(|e| panic!("failpoint {site}: {e}")) {
        Some(s) => {
            inner.sites.insert(site.to_string(), s);
            STATE.store(ST_ON, Ordering::SeqCst);
        }
        None => {
            inner.sites.remove(site);
            if inner.sites.is_empty() {
                STATE.store(ST_OFF, Ordering::SeqCst);
            }
        }
    }
}

/// Disarms one site.
pub fn disarm(site: &str) {
    configure(site, "off")
}

/// Disarms everything (harness teardown).
pub fn disarm_all() {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let inner = ensure_init(&mut guard);
    inner.sites.clear();
    STATE.store(ST_OFF, Ordering::SeqCst);
}

/// How many times `site` has tripped since it was armed.
pub fn trips(site: &str) -> u64 {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let inner = ensure_init(&mut guard);
    inner.sites.get(site).map(|s| s.trips).unwrap_or(0)
}

/// Process-wide trip count across all sites (cheap: no lock).
pub fn total_trips() -> u64 {
    TOTAL_TRIPS.load(Ordering::Relaxed)
}

/// Terminates the process without unwinding — SIGKILL via `/proc/self`
/// semantics (the `kill` binary), falling back to abort. Mirrors the
/// crash-injection hook `jobs::die_uncleanly` so resume paths are tested
/// against genuinely unclean deaths.
fn die() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    std::process::abort()
}

// ------------------------------------------------------------ I/O helpers

/// The standard error-site check: `Ok(())` to proceed, `Err` when the
/// site trips with any error-shaped action (`partial(n)` degrades to a
/// plain error here — the caller has no byte stream to tear).
pub fn fail_io(site: &'static str) -> io::Result<()> {
    match check(site) {
        None => Ok(()),
        Some(a) => Err(a.to_io_error()),
    }
}

/// The write-site check: `Ok(None)` to proceed, `Ok(Some(n))` when the
/// site tripped `partial(n)` — the caller must persist exactly `n` bytes
/// and then fail — and `Err` for error-shaped actions.
pub fn partial_write(site: &'static str) -> io::Result<Option<u64>> {
    match check(site) {
        None => Ok(None),
        Some(Action::Partial(n)) => Ok(Some(n)),
        Some(a) => Err(a.to_io_error()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoint state is process-global; tests that arm sites serialize
    /// on this lock and use distinct site names for belt and braces.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_sites_pass() {
        let _g = locked();
        disarm_all();
        assert!(!armed());
        assert_eq!(check("fsio.rename"), None);
        assert!(fail_io("fsio.rename").is_ok());
        assert_eq!(partial_write("fsio.tmp_write").unwrap(), None);
    }

    #[test]
    fn err_and_enospc_and_eof_inject_the_right_kinds() {
        let _g = locked();
        disarm_all();
        configure("t.err", "err");
        configure("t.enospc", "enospc");
        configure("t.eof", "eof");
        assert!(armed());
        assert_eq!(
            fail_io_static("t.err").unwrap_err().kind(),
            io::ErrorKind::Other
        );
        assert_eq!(
            fail_io_static("t.enospc").unwrap_err().kind(),
            io::ErrorKind::StorageFull
        );
        assert_eq!(
            fail_io_static("t.eof").unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        disarm_all();
    }

    // `fail_io` wants &'static str; tests use these fixed names.
    fn fail_io_static(site: &'static str) -> io::Result<()> {
        fail_io(site)
    }

    #[test]
    fn trip_budget_is_finite() {
        let _g = locked();
        disarm_all();
        configure("t.budget", "2*err");
        assert!(check_n("t.budget"));
        assert!(check_n("t.budget"));
        assert!(!check_n("t.budget"), "third hit must pass");
        assert_eq!(trips("t.budget"), 2);
        disarm_all();
    }

    fn check_n(site: &'static str) -> bool {
        check(site).is_some()
    }

    #[test]
    fn skip_passes_early_hits() {
        let _g = locked();
        disarm_all();
        configure("t.skip", "skip(2):err");
        assert!(!check_n("t.skip"));
        assert!(!check_n("t.skip"));
        assert!(check_n("t.skip"), "third hit must trip");
        disarm_all();
    }

    #[test]
    fn partial_reports_byte_budget() {
        let _g = locked();
        disarm_all();
        configure("t.partial", "partial(3)");
        assert_eq!(partial_write("t.partial").unwrap(), Some(3));
        // At an error-shaped site, partial degrades to a plain error.
        assert!(fail_io_static("t.partial").is_err());
        disarm_all();
    }

    #[test]
    fn probability_is_seeded_and_deterministic() {
        let _g = locked();
        disarm_all();
        let draw = |seed: u64| -> Vec<bool> {
            configure_seeded("t.prob", "50%err", seed);
            let v = (0..32).map(|_| check_n("t.prob")).collect();
            disarm("t.prob");
            v
        };
        let a = draw(7);
        let b = draw(7);
        let c = draw(8);
        assert_eq!(a, b, "same seed must replay the same trigger sequence");
        assert_ne!(a, c, "different seeds must diverge");
        let fired = a.iter().filter(|&&x| x).count();
        assert!(
            (4..=28).contains(&fired),
            "50% of 32 should be near half, got {fired}"
        );
        disarm_all();
    }

    #[test]
    fn spec_parse_errors_are_described() {
        assert!(parse_spec("dance", "s", 0)
            .unwrap_err()
            .contains("unknown action"));
        assert!(parse_spec("partial(x)", "s", 0).is_err());
        assert!(parse_spec("skip(:err", "s", 0).is_err());
        assert!(parse_spec("off", "s", 0).unwrap().is_none());
        // Modifiers compose.
        let s = parse_spec("skip(1):50%3*enospc", "s", 0).unwrap().unwrap();
        assert_eq!(s.skip, 1);
        assert_eq!(s.budget, 3);
        assert!((s.prob - 0.5).abs() < 1e-9);
        assert_eq!(s.action, Action::Enospc);
    }

    #[test]
    fn site_catalog_is_sorted_groups_and_nonempty() {
        assert!(SITES.len() >= 15);
        let unique: std::collections::HashSet<_> = SITES.iter().collect();
        assert_eq!(unique.len(), SITES.len(), "duplicate site name");
    }
}
