//! Shared experiment plumbing for the per-figure harness binaries: the
//! equal-cost network pairs of §6.4, routing-scheme selection, and a
//! one-call FCT experiment runner.

use crate::manifest::{ManifestInputs, ManifestSpec, RunManifest};
use dcn_routing::{KspSelector, PathSelector, RoutingSuite, PAPER_Q_BYTES};
use dcn_sim::{
    compute_metrics_with_dists, FaultPlan, Metrics, Ns, SimConfig, Simulator, Telemetry, Tracer,
    SEC,
};
use dcn_topology::fattree::FatTree;
use dcn_topology::xpander::Xpander;
use dcn_topology::Topology;
use dcn_workloads::FlowEvent;

/// Experiment scale: `Paper` is the configuration reported in the paper;
/// the smaller scales preserve oversubscription ratios and protocol
/// constants so curve *shapes* carry over (DESIGN.md §4, substitution 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// k=4 fat-tree (16 servers) — unit tests.
    Tiny,
    /// k=8 fat-tree (128 servers) — default for the harness.
    Small,
    /// k=16 fat-tree (1024 servers) — the paper's §6.4 configuration.
    Paper,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// The equal-cost network pair the paper compares throughout §6: a
/// full-bandwidth fat-tree and an Xpander at ~2/3 its cost supporting at
/// least as many servers.
pub struct NetworkPair {
    pub fat_tree: Topology,
    pub xpander: Topology,
    pub ft_config: FatTree,
    pub xp_config: Xpander,
}

/// Builds the §6.4 pair at a given scale:
///
/// | scale | fat-tree          | Xpander                          |
/// |-------|-------------------|----------------------------------|
/// | Tiny  | k=4: 20 sw, 16 srv| 16 sw × 4 ports (3 net + 1 srv)  |
/// | Small | k=8: 80 sw, 128 srv| 54 sw × 8 ports (5 net + 3 srv) |
/// | Paper | k=16: 320 sw, 1024 srv | 216 sw × 16 ports (11 net + 5 srv) |
pub fn paper_networks(scale: Scale, seed: u64) -> NetworkPair {
    let (ft_config, xp_config) = match scale {
        Scale::Tiny => (FatTree::full(4), Xpander::for_switches(3, 16, 1, seed)),
        Scale::Small => (FatTree::full(8), Xpander::for_switches(5, 54, 3, seed)),
        Scale::Paper => (FatTree::full(16), Xpander::paper_sec6(seed)),
    };
    NetworkPair {
        fat_tree: ft_config.build(),
        xpander: xp_config.build(),
        ft_config,
        xp_config,
    }
}

/// Routing scheme under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Routing {
    Ecmp,
    Vlb,
    /// HYB with the given Q threshold in bytes.
    Hyb(u64),
    /// Congestion-aware hybrid: ECMP until the flow has seen this many
    /// ECN-marked ACKs, then VLB (§6.3's non-simplified design).
    AdaptiveHyb(u64),
    /// Flowlet-hashed k-shortest-paths (the MPTCP-era baseline).
    Ksp(usize),
}

impl Routing {
    pub const PAPER_HYB: Routing = Routing::Hyb(PAPER_Q_BYTES);

    pub fn selector(&self, t: &Topology) -> Box<dyn PathSelector> {
        if let Routing::Ksp(k) = *self {
            return Box::new(KspSelector::new(t, k));
        }
        let suite = RoutingSuite::new(t);
        match *self {
            Routing::Ecmp => Box::new(suite.ecmp()),
            Routing::Vlb => Box::new(suite.vlb()),
            Routing::Hyb(q) => Box::new(suite.hyb(q)),
            Routing::AdaptiveHyb(marks) => Box::new(suite.adaptive_hyb(marks)),
            Routing::Ksp(_) => unreachable!(),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Routing::Ecmp => "ECMP",
            Routing::Vlb => "VLB",
            Routing::Hyb(_) => "HYB",
            Routing::AdaptiveHyb(_) => "HYB-adaptive",
            Routing::Ksp(_) => "KSP",
        }
    }
}

/// Extra outcome counters alongside the FCT metrics. Drops are split by
/// cause: `congestion_drops` are queue tail drops, `fault_drops` are
/// losses on failed or gray links (plus no-route drops at the source).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimCounters {
    pub congestion_drops: u64,
    pub fault_drops: u64,
    pub ecn_marks: u64,
    pub events: u64,
}

impl SimCounters {
    /// All drops regardless of cause.
    pub fn drops(&self) -> u64 {
        self.congestion_drops + self.fault_drops
    }
}

/// Runs one packet-level FCT experiment: injects `flows`, measures over
/// `window`, runs until every window flow completes (`max_time` caps
/// runaway experiments, matching the paper's "run until all flows in the
/// interval finish").
pub fn run_fct_experiment(
    topology: &Topology,
    routing: Routing,
    cfg: SimConfig,
    flows: &[FlowEvent],
    window: (Ns, Ns),
    max_time: Ns,
) -> (Metrics, SimCounters) {
    run_fct_experiment_with_faults(topology, routing, cfg, flows, window, max_time, None)
}

/// [`run_fct_experiment`] with an optional fault plan injected before the
/// run — the robustness experiments' entry point. With faults the
/// completion guarantee weakens to "every window flow is completed or
/// failed" (disconnected pairs are failed, not hung).
pub fn run_fct_experiment_with_faults(
    topology: &Topology,
    routing: Routing,
    cfg: SimConfig,
    flows: &[FlowEvent],
    window: (Ns, Ns),
    max_time: Ns,
    faults: Option<&FaultPlan>,
) -> (Metrics, SimCounters) {
    run_fct_experiment_traced(
        topology, routing, cfg, flows, window, max_time, faults, None,
    )
}

/// [`run_fct_experiment_with_faults`] with an optional [`Tracer`] attached
/// to the simulator for the duration of the run — the observability
/// entry point used by `--trace` on the harness binaries and by the
/// trace-regression and conservation tests. `None` keeps the default
/// [`dcn_sim::NopTracer`] (zero overhead, byte-identical outputs).
#[allow(clippy::too_many_arguments)]
pub fn run_fct_experiment_traced(
    topology: &Topology,
    routing: Routing,
    cfg: SimConfig,
    flows: &[FlowEvent],
    window: (Ns, Ns),
    max_time: Ns,
    faults: Option<&FaultPlan>,
    tracer: Option<Box<dyn Tracer>>,
) -> (Metrics, SimCounters) {
    let (metrics, counters, _) = run_fct_experiment_instrumented(
        topology, routing, cfg, flows, window, max_time, faults, tracer, None, None,
    );
    (metrics, counters)
}

/// The fully instrumented experiment entry point every other `run_fct_*`
/// variant delegates to: optional [`Tracer`], optional time-series
/// [`Telemetry`], and an optional [`ManifestSpec`] that makes the run
/// return a provenance-complete [`RunManifest`] (the caller decides where
/// to write it).
#[allow(clippy::too_many_arguments)]
pub fn run_fct_experiment_instrumented(
    topology: &Topology,
    routing: Routing,
    cfg: SimConfig,
    flows: &[FlowEvent],
    window: (Ns, Ns),
    max_time: Ns,
    faults: Option<&FaultPlan>,
    tracer: Option<Box<dyn Tracer>>,
    telemetry: Option<Telemetry>,
    manifest: Option<&ManifestSpec>,
) -> (Metrics, SimCounters, Option<RunManifest>) {
    let mut sim = Simulator::new(topology, routing.selector(topology), cfg);
    sim.set_window(window.0, window.1);
    sim.inject(flows);
    if let Some(plan) = faults {
        sim.set_fault_plan(plan);
    }
    if let Some(tr) = tracer {
        sim.set_tracer(tr);
    }
    if let Some(tel) = telemetry {
        sim.set_telemetry(tel);
    }
    let start = std::time::Instant::now();
    let records = sim.run(max_time);
    let wall = start.elapsed();
    let (metrics, dists) = compute_metrics_with_dists(&records, window.0, window.1);
    let metrics = metrics.with_transport(sim.transport_name());
    let counters = SimCounters {
        congestion_drops: sim.total_congestion_drops(),
        fault_drops: sim.total_fault_drops(),
        ecn_marks: sim.total_marks(),
        events: sim.events_processed(),
    };
    let engine = sim.engine_counters();
    let engine_wall = sim.wall_clock_counters();
    let manifest = manifest.map(|spec| {
        RunManifest::build(&ManifestInputs {
            spec,
            topology,
            routing_label: routing.label(),
            cfg: &cfg,
            window,
            faults,
            injected: flows.len(),
            metrics: &metrics,
            dists: &dists,
            counters: &counters,
            engine: &engine,
            engine_wall: &engine_wall,
            conservation: sim.conservation(),
            peak_heap: sim.heap_peak(),
            wall,
            telemetry: sim
                .telemetry()
                .map(|t| (t.samples(), t.every_ns(), t.path().map(str::to_string))),
        })
    });
    (metrics, counters, manifest)
}

/// Default measurement window per scale, mirroring the paper's
/// [0.5 s, 1.5 s) at `Paper` scale and shrinking with it.
pub fn default_window(scale: Scale) -> (Ns, Ns) {
    match scale {
        Scale::Tiny => (SEC / 100, SEC / 20),     // [10 ms, 50 ms)
        Scale::Small => (SEC / 20, 3 * SEC / 20), // [50 ms, 150 ms)
        Scale::Paper => (SEC / 2, 3 * SEC / 2),   // [0.5 s, 1.5 s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::MS;
    use dcn_workloads::{fsize::FixedSize, generate_flows, tm::AllToAll};

    #[test]
    fn tiny_pair_shapes() {
        let p = paper_networks(Scale::Tiny, 1);
        assert_eq!(p.fat_tree.num_nodes(), 20);
        assert_eq!(p.xpander.num_nodes(), 16);
        assert_eq!(p.fat_tree.num_servers(), 16);
        assert_eq!(p.xpander.num_servers(), 16);
    }

    #[test]
    fn small_pair_cost_ratio() {
        let p = paper_networks(Scale::Small, 1);
        let ratio = p.xpander.num_nodes() as f64 / p.fat_tree.num_nodes() as f64;
        assert!((ratio - 0.675).abs() < 0.01, "switch ratio {ratio}");
        assert!(p.xpander.num_servers() >= p.fat_tree.num_servers());
    }

    #[test]
    fn paper_pair_matches_section_6_4() {
        let p = paper_networks(Scale::Paper, 1);
        assert_eq!(p.fat_tree.num_nodes(), 320);
        assert_eq!(p.fat_tree.num_servers(), 1024);
        assert_eq!(p.xpander.num_nodes(), 216);
        assert_eq!(p.xpander.num_servers(), 1080);
    }

    #[test]
    fn end_to_end_experiment_runs() {
        let p = paper_networks(Scale::Tiny, 1);
        let pattern = AllToAll::new(&p.fat_tree, p.fat_tree.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(20_000), 2000.0, 0.02, 3);
        let window = (5 * MS, 15 * MS);
        let (m, c) = run_fct_experiment(
            &p.fat_tree,
            Routing::Ecmp,
            SimConfig::default(),
            &flows,
            window,
            10 * SEC,
        );
        assert!(m.flows > 0);
        assert_eq!(m.completed, m.flows, "all window flows must finish");
        assert!(m.avg_fct_ms > 0.0);
        assert!(c.events > 0);
    }

    #[test]
    fn hyb_runs_on_xpander() {
        let p = paper_networks(Scale::Tiny, 1);
        let pattern = AllToAll::new(&p.xpander, p.xpander.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(200_000), 1000.0, 0.02, 3);
        let (m, _) = run_fct_experiment(
            &p.xpander,
            Routing::PAPER_HYB,
            SimConfig::default(),
            &flows,
            (0, 20 * MS),
            10 * SEC,
        );
        assert_eq!(m.completed, m.flows);
        assert!(m.avg_long_tput_gbps > 0.0);
    }

    #[test]
    fn extended_routings_run() {
        let p = paper_networks(Scale::Tiny, 1);
        let pattern = AllToAll::new(&p.xpander, p.xpander.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(150_000), 800.0, 0.01, 5);
        for routing in [Routing::AdaptiveHyb(5), Routing::Ksp(4)] {
            let (m, _) = run_fct_experiment(
                &p.xpander,
                routing,
                SimConfig::default(),
                &flows,
                (0, 10_000_000),
                10 * SEC,
            );
            assert_eq!(m.completed, m.flows, "{routing:?}");
        }
    }

    #[test]
    fn fault_experiment_accounts_every_flow() {
        let p = paper_networks(Scale::Tiny, 1);
        let pattern = AllToAll::new(&p.xpander, p.xpander.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(100_000), 1500.0, 0.02, 7);
        let plan = FaultPlan::random_link_outages(&p.xpander, 3, 2 * MS, Some(10 * MS), 5);
        let (m, c) = run_fct_experiment_with_faults(
            &p.xpander,
            Routing::PAPER_HYB,
            SimConfig::default(),
            &flows,
            (0, 15 * MS),
            60 * SEC,
            Some(&plan),
        );
        assert!(m.flows > 0);
        assert_eq!(m.completed + m.failed, m.flows, "flow in limbo");
        assert_eq!(c.drops(), c.congestion_drops + c.fault_drops);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }
}
