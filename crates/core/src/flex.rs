//! The paper's network-flexibility metric (§2.2): *throughput
//! proportionality* (TP). A network built to sustain per-server throughput
//! α under the worst-case TM is throughput-proportional if, when only an
//! `x` fraction of servers participate, each gets `min(1, α/x)`.

/// The TP reference curve: `min(1, α / x)`.
pub fn tp_throughput(alpha: f64, x: f64) -> f64 {
    assert!(x > 0.0 && x <= 1.0, "fraction x must be in (0, 1], got {x}");
    assert!((0.0..=1.0).contains(&alpha));
    (alpha / x).min(1.0)
}

/// The fat-tree's flexibility curve from Fig 2: an oversubscribed fat-tree
/// is pinned at `α` for any participating fraction above `β = 2/k` (the
/// two-pod bottleneck of Observation 1), and only below β does throughput
/// rise proportionally.
pub fn fat_tree_throughput(alpha: f64, beta: f64, x: f64) -> f64 {
    assert!(x > 0.0 && x <= 1.0);
    if x >= beta {
        alpha
    } else {
        (alpha * beta / x).min(1.0)
    }
}

/// A sampled throughput-vs-fraction curve (one line of Fig 5/6).
#[derive(Clone, Debug)]
pub struct FlexCurve {
    pub label: String,
    /// (fraction of servers with demand, per-server throughput) pairs.
    pub points: Vec<(f64, f64)>,
}

impl FlexCurve {
    pub fn new(label: impl Into<String>) -> Self {
        FlexCurve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, throughput: f64) {
        self.points.push((x, throughput));
    }

    /// The TP reference for a measured curve: α is the curve's value at
    /// the largest sampled fraction (the paper uses x = 1.0).
    pub fn tp_reference(&self) -> FlexCurve {
        let &(x_max, alpha) = self
            .points
            .iter()
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .expect("empty curve");
        assert!(
            (x_max - 1.0).abs() < 1e-9,
            "TP reference needs a sample at x=1"
        );
        FlexCurve {
            label: format!("TP (α={alpha:.3})"),
            points: self
                .points
                .iter()
                .map(|&(x, _)| (x, tp_throughput(alpha, x)))
                .collect(),
        }
    }

    /// Largest fraction at which this curve still delivers ≥ `t` throughput
    /// (linear interpolation between samples); `None` if it never does.
    pub fn fraction_supporting(&self, t: f64) -> Option<f64> {
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut best = None;
        for w in pts.windows(2) {
            let ((x0, t0), (x1, t1)) = (w[0], w[1]);
            if t0 >= t && t1 >= t {
                best = Some(x1);
            } else if (t0 >= t) != (t1 >= t) && (t1 - t0).abs() > 1e-12 {
                let f = (t - t0) / (t1 - t0);
                best = Some(best.unwrap_or(0.0).max(x0 + f * (x1 - x0)));
            }
        }
        if let Some(&(x0, t0)) = pts.first() {
            if t0 >= t && best.is_none() {
                best = Some(x0);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tp_basic_shape() {
        assert_eq!(tp_throughput(0.5, 1.0), 0.5);
        assert_eq!(tp_throughput(0.5, 0.5), 1.0);
        assert_eq!(tp_throughput(0.5, 0.25), 1.0); // clamped
        assert!((tp_throughput(0.35, 0.7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fat_tree_flat_then_proportional() {
        let (a, b) = (0.5, 2.0 / 64.0);
        assert_eq!(fat_tree_throughput(a, b, 1.0), 0.5);
        assert_eq!(fat_tree_throughput(a, b, b), 0.5);
        // Halve the fraction below β: throughput doubles.
        assert!((fat_tree_throughput(a, b, b / 2.0) - 1.0).abs() < 1e-12);
        // Fig 2: "hitting 1 only when α fraction of the pod is involved".
        assert!((fat_tree_throughput(a, b, a * b) - 1.0).abs() < 1e-12);
        assert!(fat_tree_throughput(a, b, a * b * 1.5) < 1.0);
    }

    #[test]
    fn tp_dominates_fat_tree_everywhere() {
        let (a, b) = (0.4, 0.1);
        for i in 1..=100 {
            let x = i as f64 / 100.0;
            assert!(tp_throughput(a, x) >= fat_tree_throughput(a, b, x) - 1e-12);
        }
    }

    #[test]
    fn tp_reference_from_curve() {
        let mut c = FlexCurve::new("net");
        for &x in &[0.2, 0.4, 0.6, 0.8, 1.0] {
            c.push(x, 0.5_f64.min(0.4 / x).max(0.4));
        }
        let tp = c.tp_reference();
        assert_eq!(tp.points.len(), 5);
        let at_1 = tp.points.iter().find(|p| p.0 == 1.0).unwrap().1;
        assert!((at_1 - 0.4).abs() < 1e-12);
        let at_02 = tp.points.iter().find(|p| p.0 == 0.2).unwrap().1;
        assert_eq!(at_02, 1.0);
    }

    #[test]
    fn fraction_supporting_interpolates() {
        let mut c = FlexCurve::new("net");
        c.push(0.2, 1.0);
        c.push(0.4, 1.0);
        c.push(0.6, 0.8);
        c.push(1.0, 0.5);
        // Full throughput supported up to x = 0.4 exactly… interpolation
        // finds the crossing between 0.4 and 0.6.
        let f = c.fraction_supporting(1.0).unwrap();
        assert!((0.39..=0.41).contains(&f), "{f}");
        let f8 = c.fraction_supporting(0.8).unwrap();
        assert!((f8 - 0.6).abs() < 1e-9);
        assert!(c.fraction_supporting(1.1).is_none());
    }
}
