//! K-shortest-paths oblivious routing: hash each flowlet onto one of the
//! k shortest loopless paths. This is the path layer the pre-HYB expander
//! literature paired with MPTCP (§6: "solutions have depended on MPTCP
//! over k-shortest paths"); here it serves as a baseline selector.

use crate::ecmp::hash3;
use crate::hyb::PathSelector;
use crate::ksp::k_shortest_paths;
use dcn_topology::{LinkId, NodeId, Topology};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// The k link-paths cached for one (src, dst) pair.
type PathSet = Arc<Vec<Vec<LinkId>>>;

/// Flowlet-hashed KSP selector with a lazily filled per-pair path cache.
pub struct KspSelector {
    topology: Topology,
    k: usize,
    cache: RwLock<HashMap<(NodeId, NodeId), PathSet>>,
}

impl KspSelector {
    pub fn new(topology: &Topology, k: usize) -> Self {
        assert!(k >= 1);
        KspSelector {
            topology: topology.clone(),
            k,
            cache: RwLock::new(HashMap::new()),
        }
    }

    fn paths(&self, src: NodeId, dst: NodeId) -> PathSet {
        if let Some(p) = self.cache.read().unwrap().get(&(src, dst)) {
            return p.clone();
        }
        // An unreachable pair caches an empty set; select() turns that
        // into an empty "no route" path like the other selectors.
        let node_paths = k_shortest_paths(&self.topology, src, dst, self.k);
        let link_paths: Vec<Vec<LinkId>> = node_paths
            .iter()
            .map(|p| {
                p.windows(2)
                    .map(|w| {
                        self.topology
                            .neighbors(w[0])
                            .iter()
                            .find(|&&(v, _)| v == w[1])
                            .map(|&(_, l)| l)
                            .expect("consecutive path nodes must be adjacent")
                    })
                    .collect()
            })
            .collect();
        let arc = Arc::new(link_paths);
        self.cache.write().unwrap().insert((src, dst), arc.clone());
        arc
    }

    /// Number of cached (src, dst) entries — for tests and diagnostics.
    pub fn cached_pairs(&self) -> usize {
        self.cache.read().unwrap().len()
    }

    /// All k cached link-paths for a pair (computing them on first use) —
    /// used by congestion-aware routers that score candidates themselves.
    pub fn candidate_paths(&self, src: NodeId, dst: NodeId) -> PathSet {
        self.paths(src, dst)
    }
}

impl PathSelector for KspSelector {
    fn select(&self, src: NodeId, dst: NodeId, key: u64, _bytes_sent: u64) -> Vec<LinkId> {
        let paths = self.paths(src, dst);
        if paths.is_empty() {
            return Vec::new();
        }
        let pick = (hash3(key, src as u64, dst as u64) % paths.len() as u64) as usize;
        paths[pick].clone()
    }

    fn rebuild(&self, topo: &Topology) -> Box<dyn PathSelector> {
        Box::new(KspSelector::new(topo, self.k))
    }

    fn name(&self) -> &'static str {
        "KSP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::xpander::Xpander;

    fn walk(t: &Topology, src: NodeId, links: &[LinkId]) -> NodeId {
        let mut u = src;
        for &l in links {
            u = t.link(l).other(u);
        }
        u
    }

    #[test]
    fn ksp_selector_reaches_destination_over_many_keys() {
        let t = Xpander::new(5, 8, 2, 1).build();
        let sel = KspSelector::new(&t, 6);
        for key in 0..100u64 {
            let p = sel.select(0, 30, key, 0);
            assert_eq!(walk(&t, 0, &p), 30);
        }
        assert_eq!(sel.cached_pairs(), 1);
    }

    #[test]
    fn ksp_gives_neighbor_pairs_path_diversity() {
        // Unlike ECMP, KSP routes between adjacent ToRs over several paths.
        let t = Xpander::new(6, 8, 3, 2).build();
        let l = t.link(0);
        let sel = KspSelector::new(&t, 8);
        let mut distinct = std::collections::HashSet::new();
        for key in 0..200u64 {
            distinct.insert(sel.select(l.a, l.b, key, 0));
        }
        assert!(distinct.len() >= 4, "only {} paths used", distinct.len());
    }

    #[test]
    fn same_key_is_stable() {
        let t = Xpander::new(5, 6, 2, 3).build();
        let sel = KspSelector::new(&t, 4);
        assert_eq!(sel.select(1, 20, 9, 0), sel.select(1, 20, 9, 0));
    }
}
