//! Yen's k-shortest loopless paths (Yen 1971). The paper's §6 notes prior
//! expander routing depended on MPTCP over k-shortest paths; we provide
//! KSP for path-diversity audits (Fig 7a) and as a baseline building block.

use dcn_topology::{NodeId, Topology};
use std::collections::{HashSet, VecDeque};

/// Computes up to `k` shortest loopless node paths from `src` to `dst`,
/// ordered by hop count (ties in discovery order). Each path includes both
/// endpoints. Returns fewer than `k` paths when the graph runs out.
pub fn k_shortest_paths(t: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Vec<NodeId>> {
    assert_ne!(src, dst);
    let Some(first) = bfs_restricted(t, src, dst, &HashSet::new(), &HashSet::new()) else {
        return Vec::new();
    };
    let mut a: Vec<Vec<NodeId>> = vec![first];
    let mut b: Vec<Vec<NodeId>> = Vec::new();

    while a.len() < k {
        let prev = a.last().unwrap().clone();
        for i in 0..prev.len() - 1 {
            let spur = prev[i];
            let root = &prev[..=i];
            let mut banned_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
            for p in &a {
                if p.len() > i && p[..=i] == *root {
                    banned_edges.insert((p[i], p[i + 1]));
                    banned_edges.insert((p[i + 1], p[i]));
                }
            }
            let banned_nodes: HashSet<NodeId> = root[..i].iter().copied().collect();
            if let Some(spur_path) = bfs_restricted(t, spur, dst, &banned_nodes, &banned_edges) {
                let mut cand = root[..i].to_vec();
                cand.extend(spur_path);
                if !a.contains(&cand) && !b.contains(&cand) {
                    b.push(cand);
                }
            }
        }
        if b.is_empty() {
            break;
        }
        // Shortest candidate next (stable for determinism).
        let best = b
            .iter()
            .enumerate()
            .min_by_key(|(i, p)| (p.len(), *i))
            .map(|(i, _)| i)
            .unwrap();
        a.push(b.swap_remove(best));
    }
    a
}

fn bfs_restricted(
    t: &Topology,
    src: NodeId,
    dst: NodeId,
    banned_nodes: &HashSet<NodeId>,
    banned_edges: &HashSet<(NodeId, NodeId)>,
) -> Option<Vec<NodeId>> {
    if banned_nodes.contains(&src) || banned_nodes.contains(&dst) {
        return None;
    }
    let n = t.num_nodes();
    let mut parent = vec![u32::MAX; n];
    let mut seen = vec![false; n];
    seen[src as usize] = true;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        if u == dst {
            let mut path = vec![dst];
            let mut v = dst;
            while v != src {
                v = parent[v as usize];
                path.push(v);
            }
            path.reverse();
            return Some(path);
        }
        for &(v, _) in t.neighbors(u) {
            if seen[v as usize] || banned_nodes.contains(&v) || banned_edges.contains(&(u, v)) {
                continue;
            }
            seen[v as usize] = true;
            parent[v as usize] = u;
            q.push_back(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::FatTree;
    use dcn_topology::xpander::Xpander;
    use dcn_topology::NodeKind;

    #[test]
    fn single_path_graph() {
        let mut t = dcn_topology::Topology::new("path");
        let n: Vec<_> = (0..4).map(|_| t.add_node(NodeKind::Tor, 1)).collect();
        for w in n.windows(2) {
            t.add_link(w[0], w[1]);
        }
        let paths = k_shortest_paths(&t, 0, 3, 5);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn diamond_two_paths() {
        let mut t = dcn_topology::Topology::new("diamond");
        for _ in 0..4 {
            t.add_node(NodeKind::Tor, 1);
        }
        t.add_link(0, 1);
        t.add_link(0, 2);
        t.add_link(1, 3);
        t.add_link(2, 3);
        let paths = k_shortest_paths(&t, 0, 3, 5);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 3);
        assert_eq!(paths[1].len(), 3);
        assert_ne!(paths[0], paths[1]);
    }

    #[test]
    fn paths_are_loopless_and_sorted() {
        let t = Xpander::new(5, 6, 2, 4).build();
        let paths = k_shortest_paths(&t, 0, 17, 8);
        assert!(!paths.is_empty());
        let mut last = 0usize;
        for p in &paths {
            assert!(p.len() >= last, "paths not sorted by length");
            last = p.len();
            let set: HashSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len(), "loop in path {p:?}");
            assert_eq!(p[0], 0);
            assert_eq!(*p.last().unwrap(), 17);
            for w in p.windows(2) {
                assert!(t.are_adjacent(w[0], w[1]));
            }
        }
    }

    #[test]
    fn fat_tree_cross_pod_has_many_shortest() {
        let t = FatTree::full(4).build();
        // k=4 fat-tree: 4 shortest 4-hop paths between cross-pod ToRs.
        let paths = k_shortest_paths(&t, 0, 12, 4);
        assert_eq!(paths.len(), 4);
        assert!(paths.iter().all(|p| p.len() == 5));
    }

    #[test]
    fn disconnected_returns_empty() {
        let mut t = dcn_topology::Topology::new("islands");
        for _ in 0..3 {
            t.add_node(NodeKind::Tor, 1);
        }
        t.add_link(0, 1);
        assert!(k_shortest_paths(&t, 0, 2, 3).is_empty());
    }
}
