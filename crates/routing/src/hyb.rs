//! The paper's HYB scheme (§6.3) and the [`PathSelector`] abstraction the
//! packet simulator routes through.
//!
//! HYB forwards a flow's flowlets along ECMP paths until the flow has sent
//! `Q` bytes (default 100 KB — the operator's "short flow" notion), then
//! switches to VLB for subsequent flowlets. It is oblivious: no congestion
//! feedback, only the flow's own byte count.

use crate::ecmp::EcmpTable;
use crate::vlb::Vlb;
use dcn_topology::{LinkId, NodeId, Topology};
use std::sync::Arc;

/// Strategy for choosing a flowlet's path between two ToRs.
pub trait PathSelector: Send + Sync {
    /// Links from `src` to `dst` for a flowlet identified by `key`.
    /// `bytes_sent` is how much the flow had sent when the flowlet began.
    fn select(&self, src: NodeId, dst: NodeId, key: u64, bytes_sent: u64) -> Vec<LinkId>;

    /// Congestion-aware variant: `ecn_marks` is how many marked ACKs the
    /// flow has received so far. The default ignores it (oblivious
    /// schemes); [`AdaptiveHybSelector`] switches on it instead of on the
    /// byte count.
    fn select_with_feedback(
        &self,
        src: NodeId,
        dst: NodeId,
        key: u64,
        bytes_sent: u64,
        _ecn_marks: u64,
    ) -> Vec<LinkId> {
        self.select(src, dst, key, bytes_sent)
    }

    /// Recomputes this selector's routing state against a (possibly
    /// degraded) view of the topology — the control-plane reconvergence
    /// step after link or switch failures. Link ids in the returned
    /// selector's paths refer to `topo`'s numbering, so callers that
    /// renumber links (survivor topologies) must translate.
    fn rebuild(&self, topo: &Topology) -> Box<dyn PathSelector>;

    fn name(&self) -> &'static str;
}

/// Pure ECMP.
pub struct EcmpSelector {
    pub table: Arc<EcmpTable>,
}

impl PathSelector for EcmpSelector {
    fn select(&self, src: NodeId, dst: NodeId, key: u64, _bytes_sent: u64) -> Vec<LinkId> {
        self.table.path(src, dst, key)
    }
    fn rebuild(&self, topo: &Topology) -> Box<dyn PathSelector> {
        Box::new(RoutingSuite::new(topo).ecmp())
    }
    fn name(&self) -> &'static str {
        "ECMP"
    }
}

/// Pure VLB.
pub struct VlbSelector {
    pub table: Arc<EcmpTable>,
    pub vlb: Vlb,
}

impl PathSelector for VlbSelector {
    fn select(&self, src: NodeId, dst: NodeId, key: u64, _bytes_sent: u64) -> Vec<LinkId> {
        self.vlb.path(&self.table, src, dst, key)
    }
    fn rebuild(&self, topo: &Topology) -> Box<dyn PathSelector> {
        Box::new(RoutingSuite::new(topo).vlb())
    }
    fn name(&self) -> &'static str {
        "VLB"
    }
}

/// HYB: ECMP below the Q-threshold, VLB above (per flowlet).
pub struct HybSelector {
    pub table: Arc<EcmpTable>,
    pub vlb: Vlb,
    /// Byte threshold Q; the paper uses 100 KB.
    pub q_bytes: u64,
}

/// The paper's Q = 100 KB.
pub const PAPER_Q_BYTES: u64 = 100_000;

impl PathSelector for HybSelector {
    fn select(&self, src: NodeId, dst: NodeId, key: u64, bytes_sent: u64) -> Vec<LinkId> {
        if bytes_sent < self.q_bytes {
            self.table.path(src, dst, key)
        } else {
            self.vlb.path(&self.table, src, dst, key)
        }
    }
    fn rebuild(&self, topo: &Topology) -> Box<dyn PathSelector> {
        Box::new(RoutingSuite::new(topo).hyb(self.q_bytes))
    }
    fn name(&self) -> &'static str {
        "HYB"
    }
}

/// The congestion-aware hybrid the paper describes before simplifying to
/// the Q-threshold (§6.3): "packets for a flow are forwarded along ECMP
/// paths until this flow encounters a certain congestion threshold (e.g.,
/// a number of ECN marks), following which, packets … are forwarded using
/// VLB". Sidesteps HYB's short-flow-saturation caveat at the cost of
/// needing congestion state.
pub struct AdaptiveHybSelector {
    pub table: Arc<EcmpTable>,
    pub vlb: Vlb,
    /// ECN-marked ACKs a flow tolerates before moving to VLB.
    pub mark_threshold: u64,
}

impl PathSelector for AdaptiveHybSelector {
    fn select(&self, src: NodeId, dst: NodeId, key: u64, _bytes_sent: u64) -> Vec<LinkId> {
        // Without feedback, behave as ECMP (no marks seen).
        self.table.path(src, dst, key)
    }

    fn select_with_feedback(
        &self,
        src: NodeId,
        dst: NodeId,
        key: u64,
        _bytes_sent: u64,
        ecn_marks: u64,
    ) -> Vec<LinkId> {
        if ecn_marks < self.mark_threshold {
            self.table.path(src, dst, key)
        } else {
            self.vlb.path(&self.table, src, dst, key)
        }
    }

    fn rebuild(&self, topo: &Topology) -> Box<dyn PathSelector> {
        Box::new(RoutingSuite::new(topo).adaptive_hyb(self.mark_threshold))
    }

    fn name(&self) -> &'static str {
        "HYB-adaptive"
    }
}

/// Convenience constructors for the three schemes over one shared table.
pub struct RoutingSuite {
    pub table: Arc<EcmpTable>,
    topology_nodes: usize,
}

impl RoutingSuite {
    pub fn new(t: &Topology) -> Self {
        RoutingSuite {
            table: Arc::new(EcmpTable::new(t)),
            topology_nodes: t.num_nodes(),
        }
    }

    pub fn ecmp(&self) -> EcmpSelector {
        EcmpSelector {
            table: self.table.clone(),
        }
    }

    pub fn vlb(&self) -> VlbSelector {
        VlbSelector {
            table: self.table.clone(),
            vlb: self.vlb_core(),
        }
    }

    pub fn hyb(&self, q_bytes: u64) -> HybSelector {
        HybSelector {
            table: self.table.clone(),
            vlb: self.vlb_core(),
            q_bytes,
        }
    }

    pub fn adaptive_hyb(&self, mark_threshold: u64) -> AdaptiveHybSelector {
        AdaptiveHybSelector {
            table: self.table.clone(),
            vlb: self.vlb_core(),
            mark_threshold,
        }
    }

    fn vlb_core(&self) -> Vlb {
        Vlb::with_nodes(self.topology_nodes as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::xpander::Xpander;

    fn suite() -> (Topology, RoutingSuite) {
        let t = Xpander::new(6, 8, 3, 2).build();
        let s = RoutingSuite::new(&t);
        (t, s)
    }

    fn endpoint(t: &Topology, links: &[LinkId], src: NodeId) -> NodeId {
        let mut u = src;
        for &l in links {
            u = t.link(l).other(u);
        }
        u
    }

    #[test]
    fn hyb_uses_ecmp_below_threshold() {
        let (_, s) = suite();
        let hyb = s.hyb(PAPER_Q_BYTES);
        let ecmp = s.ecmp();
        for key in 0..30u64 {
            assert_eq!(hyb.select(0, 9, key, 0), ecmp.select(0, 9, key, 0));
            assert_eq!(
                hyb.select(0, 9, key, PAPER_Q_BYTES - 1),
                ecmp.select(0, 9, key, 0)
            );
        }
    }

    #[test]
    fn hyb_uses_vlb_at_threshold() {
        let (_, s) = suite();
        let hyb = s.hyb(PAPER_Q_BYTES);
        let vlb = s.vlb();
        for key in 0..30u64 {
            assert_eq!(
                hyb.select(0, 9, key, PAPER_Q_BYTES),
                vlb.select(0, 9, key, 0)
            );
        }
    }

    #[test]
    fn all_selectors_reach_destination() {
        let (t, s) = suite();
        let selectors: Vec<Box<dyn PathSelector>> =
            vec![Box::new(s.ecmp()), Box::new(s.vlb()), Box::new(s.hyb(1000))];
        for sel in &selectors {
            for key in 0..20u64 {
                for &bytes in &[0u64, 500, 5_000_000] {
                    let p = sel.select(2, 40, key, bytes);
                    assert_eq!(endpoint(&t, &p, 2), 40, "{} failed", sel.name());
                }
            }
        }
    }

    #[test]
    fn q_zero_is_pure_vlb_q_max_is_pure_ecmp() {
        let (_, s) = suite();
        let pure_vlb = s.hyb(0);
        let vlb = s.vlb();
        let pure_ecmp = s.hyb(u64::MAX);
        let ecmp = s.ecmp();
        for key in 0..10u64 {
            assert_eq!(pure_vlb.select(1, 8, key, 0), vlb.select(1, 8, key, 0));
            assert_eq!(
                pure_ecmp.select(1, 8, key, u64::MAX - 1),
                ecmp.select(1, 8, key, 0)
            );
        }
    }

    #[test]
    fn adaptive_switches_on_marks_not_bytes() {
        let (_, s) = suite();
        let adaptive = s.adaptive_hyb(3);
        let ecmp = s.ecmp();
        let vlb = s.vlb();
        for key in 0..20u64 {
            // Bytes are ignored entirely.
            assert_eq!(
                adaptive.select_with_feedback(0, 9, key, u64::MAX - 1, 0),
                ecmp.select(0, 9, key, 0)
            );
            assert_eq!(
                adaptive.select_with_feedback(0, 9, key, 0, 2),
                ecmp.select(0, 9, key, 0)
            );
            assert_eq!(
                adaptive.select_with_feedback(0, 9, key, 0, 3),
                vlb.select(0, 9, key, 0)
            );
        }
    }

    #[test]
    fn default_feedback_ignores_marks() {
        let (_, s) = suite();
        let hyb = s.hyb(1000);
        for key in 0..10u64 {
            assert_eq!(
                hyb.select_with_feedback(1, 8, key, 0, 999),
                hyb.select(1, 8, key, 0)
            );
        }
    }

    #[test]
    fn names() {
        let (_, s) = suite();
        assert_eq!(s.ecmp().name(), "ECMP");
        assert_eq!(s.vlb().name(), "VLB");
        assert_eq!(s.hyb(1).name(), "HYB");
        assert_eq!(s.adaptive_hyb(1).name(), "HYB-adaptive");
    }
}
