//! Valiant load balancing (Zhang-Shen & McKeown): bounce each flow(let)
//! through a random intermediate switch, reaching it and leaving it via
//! ECMP. This trades 2× path length for full use of the network's path
//! diversity — the paper's escape hatch from ECMP's single-path collapse
//! between adjacent ToRs (§6.1), implemented in practice as encap/decap
//! at the hypervisor (§6.3, as in VL2).

use crate::ecmp::{hash3, EcmpTable};
use dcn_topology::{LinkId, NodeId, Topology};

/// VLB path selection over a prebuilt [`EcmpTable`].
pub struct Vlb {
    num_nodes: u32,
}

impl Vlb {
    pub fn new(t: &Topology) -> Self {
        Self::with_nodes(t.num_nodes() as u32)
    }

    /// Construct from a switch count alone (VLB needs nothing else).
    pub fn with_nodes(num_nodes: u32) -> Self {
        Vlb { num_nodes }
    }

    /// Picks the intermediate switch for a flowlet: uniform over all
    /// switches other than source and destination, derived from `key`.
    pub fn intermediate(&self, src: NodeId, dst: NodeId, key: u64) -> NodeId {
        assert!(self.num_nodes > 2, "VLB needs at least 3 switches");
        let mut h = hash3(key, src as u64, dst as u64);
        loop {
            let via = (h % self.num_nodes as u64) as NodeId;
            if via != src && via != dst {
                return via;
            }
            h = hash3(h, 0x5eed, key);
        }
    }

    /// Full VLB path: ECMP to the intermediate, then ECMP to the
    /// destination. The two legs use distinct hash keys so their per-hop
    /// choices are independent. On a partitioned survivor topology an
    /// unreachable intermediate is rehashed a bounded number of times,
    /// then VLB degrades to direct ECMP (empty when `dst` itself is cut).
    pub fn path(&self, table: &EcmpTable, src: NodeId, dst: NodeId, key: u64) -> Vec<LinkId> {
        let mut h = key;
        for _ in 0..16 {
            let via = self.intermediate(src, dst, h);
            if table.distance(src, via) != u32::MAX && table.distance(via, dst) != u32::MAX {
                let mut p = table.path(src, via, hash3(key, 1, via as u64));
                p.extend(table.path(via, dst, hash3(key, 2, via as u64)));
                return p;
            }
            h = hash3(h, 0x0DD_5EED, key);
        }
        table.path(src, dst, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::xpander::Xpander;

    fn net() -> (dcn_topology::Topology, EcmpTable, Vlb) {
        let t = Xpander::new(6, 8, 3, 2).build();
        let table = EcmpTable::new(&t);
        let vlb = Vlb::new(&t);
        (t, table, vlb)
    }

    #[test]
    fn path_reaches_destination() {
        let (t, table, vlb) = net();
        for key in 0..50u64 {
            let p = vlb.path(&table, 0, 1, key);
            let mut u = 0u32;
            for &l in &p {
                u = t.link(l).other(u);
            }
            assert_eq!(u, 1);
        }
    }

    #[test]
    fn intermediate_never_endpoint() {
        let (_, _, vlb) = net();
        for key in 0..500u64 {
            let via = vlb.intermediate(3, 9, key);
            assert_ne!(via, 3);
            assert_ne!(via, 9);
        }
    }

    #[test]
    fn uses_many_distinct_paths_between_neighbors() {
        // The whole point (§6.1): adjacent ToRs get path diversity.
        let (t, table, vlb) = net();
        let l = t.link(0);
        let mut firsts = std::collections::HashSet::new();
        for key in 0..200u64 {
            let p = vlb.path(&table, l.a, l.b, key);
            firsts.insert(p[0]);
        }
        assert!(firsts.len() > 3, "VLB stuck on {} first hops", firsts.len());
    }

    #[test]
    fn deterministic_per_key() {
        let (_, table, vlb) = net();
        assert_eq!(vlb.path(&table, 0, 5, 77), vlb.path(&table, 0, 5, 77));
    }

    #[test]
    fn intermediates_spread_uniformly() {
        let (t, _, vlb) = net();
        let n = t.num_nodes();
        let mut counts = vec![0usize; n];
        let trials = 20_000;
        for key in 0..trials as u64 {
            counts[vlb.intermediate(0, 1, key) as usize] += 1;
        }
        let expect = trials as f64 / (n - 2) as f64;
        for (i, &c) in counts.iter().enumerate() {
            if i == 0 || i == 1 {
                assert_eq!(c, 0);
            } else {
                assert!(
                    (c as f64 - expect).abs() < expect * 0.5,
                    "node {i}: {c} vs {expect}"
                );
            }
        }
    }
}
