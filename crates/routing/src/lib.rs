//! # dcn-routing
//!
//! Routing for static data center networks, per §6 of *"Beyond fat-trees
//! without antennae, mirrors, and disco-balls"*:
//!
//! - [`ecmp`] — per-hop hashed equal-cost multi-path over all shortest paths;
//! - [`vlb`] — Valiant load balancing via a random intermediate switch;
//! - [`hyb`] — the paper's HYB scheme (ECMP until a flow passes Q = 100 KB,
//!   then VLB, switching at flowlet granularity) and the [`hyb::PathSelector`]
//!   trait the packet simulator consumes;
//! - [`ksp`] — Yen's k-shortest loopless paths for diversity audits.
//!
//! ```
//! use dcn_topology::xpander::Xpander;
//! use dcn_routing::hyb::{RoutingSuite, PathSelector, PAPER_Q_BYTES};
//!
//! let t = Xpander::new(6, 8, 3, 2).build();
//! let suite = RoutingSuite::new(&t);
//! let hyb = suite.hyb(PAPER_Q_BYTES);
//! let path = hyb.select(0, 9, 1234, 0);
//! assert!(!path.is_empty());
//! ```

pub mod ecmp;
pub mod hyb;
pub mod ksp;
pub mod kspsel;
pub mod vlb;

pub use ecmp::EcmpTable;
pub use hyb::{
    AdaptiveHybSelector, EcmpSelector, HybSelector, PathSelector, RoutingSuite, VlbSelector,
    PAPER_Q_BYTES,
};
pub use ksp::k_shortest_paths;
pub use kspsel::KspSelector;
pub use vlb::Vlb;
