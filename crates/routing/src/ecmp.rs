//! Equal-cost multi-path routing: per-destination next-hop sets over all
//! shortest paths, with deterministic per-hop hashing — the behavior of a
//! commodity switch hashing a flow(let) onto one of its equal-cost ports.

use dcn_topology::{LinkId, NodeId, Topology};

/// Precomputed ECMP next hops: for every (destination, node) the set of
/// `(next node, link)` choices that lie on a shortest path. Parallel links
/// appear once each, so hashing over the set load-balances them too.
pub struct EcmpTable {
    /// `nexthops[dst][node]` — empty exactly when `node == dst`.
    nexthops: Vec<Vec<Vec<(NodeId, LinkId)>>>,
    /// Hop distance `dist[dst][node]`.
    dist: Vec<Vec<u32>>,
}

impl EcmpTable {
    /// Builds the table with one BFS per destination: O(V·E).
    pub fn new(t: &Topology) -> Self {
        let n = t.num_nodes();
        let mut nexthops = Vec::with_capacity(n);
        let mut dist = Vec::with_capacity(n);
        for d in 0..n as NodeId {
            let dd = t.bfs_distances(d);
            let mut per_node = vec![Vec::new(); n];
            for u in 0..n as NodeId {
                if u == d || dd[u as usize] == u32::MAX {
                    continue;
                }
                for &(v, l) in t.neighbors(u) {
                    if dd[v as usize] + 1 == dd[u as usize] {
                        per_node[u as usize].push((v, l));
                    }
                }
                debug_assert!(!per_node[u as usize].is_empty());
            }
            nexthops.push(per_node);
            dist.push(dd);
        }
        EcmpTable { nexthops, dist }
    }

    /// All equal-cost `(next node, link)` choices at `node` toward `dst`.
    pub fn choices(&self, node: NodeId, dst: NodeId) -> &[(NodeId, LinkId)] {
        &self.nexthops[dst as usize][node as usize]
    }

    /// Hop distance from `node` to `dst`.
    pub fn distance(&self, node: NodeId, dst: NodeId) -> u32 {
        self.dist[dst as usize][node as usize]
    }

    /// Walks the per-hop hash-selected shortest path from `src` to `dst`.
    /// `key` identifies the flow(let); every switch hashes `(key, node)`
    /// independently, like real ECMP. Returns the traversed links, or an
    /// empty vector when `dst` is unreachable (a partitioned survivor
    /// topology) — callers treat that as "no route", not "zero hops".
    pub fn path(&self, src: NodeId, dst: NodeId, key: u64) -> Vec<LinkId> {
        if src != dst && self.dist[dst as usize][src as usize] == u32::MAX {
            return Vec::new();
        }
        let mut links = Vec::with_capacity(self.distance(src, dst) as usize);
        let mut u = src;
        while u != dst {
            let c = self.choices(u, dst);
            let pick = (hash3(key, u as u64, dst as u64) % c.len() as u64) as usize;
            let (v, l) = c[pick];
            links.push(l);
            u = v;
        }
        links
    }

    /// Number of distinct equal-cost *first hops* from `src` toward `dst`
    /// (Fig 7a's "ECMP uses only the direct link" audit).
    pub fn first_hop_diversity(&self, src: NodeId, dst: NodeId) -> usize {
        self.choices(src, dst).len()
    }
}

/// splitmix64-style mix of three words — stable across platforms.
pub fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17) ^ 0xBF58_476D_1CE4_E5B9)
        .wrapping_add(c.wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::FatTree;
    use dcn_topology::xpander::Xpander;

    #[test]
    fn paths_are_shortest() {
        let t = FatTree::full(4).build();
        let table = EcmpTable::new(&t);
        let apsp = t.apsp();
        for src in [0u32, 1, 4] {
            for dst in [8u32, 12, 13] {
                for key in 0..20u64 {
                    let p = table.path(src, dst, key);
                    assert_eq!(p.len() as u32, apsp[src as usize][dst as usize]);
                    // Verify link continuity.
                    let mut u = src;
                    for &l in &p {
                        u = t.link(l).other(u);
                    }
                    assert_eq!(u, dst);
                }
            }
        }
    }

    #[test]
    fn same_key_same_path() {
        let t = FatTree::full(4).build();
        let table = EcmpTable::new(&t);
        assert_eq!(table.path(0, 12, 5), table.path(0, 12, 5));
    }

    #[test]
    fn different_keys_spread_over_paths() {
        let t = FatTree::full(8).build();
        let table = EcmpTable::new(&t);
        let mut distinct = std::collections::HashSet::new();
        for key in 0..200u64 {
            distinct.insert(table.path(0, 40, key));
        }
        // k=8 fat-tree has 16 shortest paths between cross-pod ToRs.
        assert!(distinct.len() > 8, "only {} distinct paths", distinct.len());
    }

    #[test]
    fn adjacent_tors_have_single_ecmp_path() {
        // Fig 7a: between directly connected ToRs in an expander, ECMP
        // collapses to the single direct link.
        let t = Xpander::new(6, 8, 3, 2).build();
        let table = EcmpTable::new(&t);
        let l = t.link(0);
        assert_eq!(table.first_hop_diversity(l.a, l.b), 1);
        for key in 0..50u64 {
            assert_eq!(table.path(l.a, l.b, key), vec![0]);
        }
    }

    #[test]
    fn fat_tree_cross_pod_diversity() {
        let t = FatTree::full(4).build();
        let table = EcmpTable::new(&t);
        // ToR 0 toward a different pod: both aggs are equal-cost.
        assert_eq!(table.first_hop_diversity(0, 12), 2);
    }

    #[test]
    fn distance_lookup() {
        let t = FatTree::full(4).build();
        let table = EcmpTable::new(&t);
        assert_eq!(table.distance(0, 0), 0);
        assert_eq!(table.distance(0, 1), 2); // same pod via agg
        assert_eq!(table.distance(0, 12), 4); // cross pod
    }

    #[test]
    fn unreachable_pair_yields_empty_path() {
        use dcn_topology::{NodeKind, Topology};
        let mut t = Topology::new("islands");
        let a = t.add_node(NodeKind::Tor, 1);
        let b = t.add_node(NodeKind::Tor, 1);
        t.add_node(NodeKind::Tor, 1);
        t.add_link(a, b);
        let table = EcmpTable::new(&t);
        assert!(table.path(0, 2, 5).is_empty());
        assert_eq!(table.distance(0, 2), u32::MAX);
        assert!(!table.path(0, 1, 5).is_empty());
    }

    #[test]
    fn hash_is_stable() {
        // Regression pin so routing (and thus experiments) never silently
        // change across refactors.
        assert_eq!(hash3(1, 2, 3), hash3(1, 2, 3));
        assert_ne!(hash3(1, 2, 3), hash3(1, 2, 4));
        assert_ne!(hash3(1, 2, 3), hash3(2, 1, 3));
    }
}
