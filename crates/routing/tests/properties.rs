//! Property-style tests for routing: path validity, shortest-path
//! optimality of ECMP, VLB leg structure, HYB threshold semantics, and
//! rebuild-after-failure equivalence. Seeded sweeps stand in for proptest.

use dcn_rng::Rng;
use dcn_routing::ecmp::EcmpTable;
use dcn_routing::hyb::PathSelector;
use dcn_routing::ksp::k_shortest_paths;
use dcn_routing::RoutingSuite;
use dcn_topology::jellyfish::Jellyfish;
use dcn_topology::{NodeId, Topology};

fn net(n: u32, d: u32, seed: u64) -> Topology {
    Jellyfish::new(n, d, 2, seed).build()
}

/// Walks a link path from `src`, returning the final node.
fn walk(t: &Topology, src: NodeId, links: &[u32]) -> NodeId {
    let mut u = src;
    for &l in links {
        u = t.link(l).other(u);
    }
    u
}

/// ECMP paths land at the destination and have exactly BFS length.
#[test]
fn ecmp_paths_shortest() {
    let mut meta = Rng::seed_from_u64(0xEC3);
    for _ in 0..24 {
        let n = meta.gen_range(10u32..40);
        let seed = meta.gen_range(0u64..200);
        let key = meta.gen_range(0u64..1000);
        let t = net(n, 4, seed);
        let table = EcmpTable::new(&t);
        let apsp = t.apsp();
        let (src, dst) = (0u32, n - 1);
        let p = table.path(src, dst, key);
        assert_eq!(p.len() as u32, apsp[src as usize][dst as usize]);
        assert_eq!(walk(&t, src, &p), dst);
    }
}

/// VLB paths reach the destination and are at most the two ECMP legs
/// long; HYB respects its byte threshold exactly.
#[test]
fn vlb_and_hyb_valid() {
    let mut meta = Rng::seed_from_u64(0x71B);
    for _ in 0..24 {
        let n = meta.gen_range(10u32..40);
        let seed = meta.gen_range(0u64..100);
        let key = meta.gen_range(0u64..500);
        let q = meta.gen_range(1u64..1_000_000);
        let t = net(n, 4, seed);
        let suite = RoutingSuite::new(&t);
        let (src, dst) = (1u32, n - 2);
        if src == dst {
            continue;
        }

        let vlb = suite.vlb();
        let pv = vlb.select(src, dst, key, 0);
        assert_eq!(walk(&t, src, &pv), dst);

        let hyb = suite.hyb(q);
        let below = hyb.select(src, dst, key, q - 1);
        let at = hyb.select(src, dst, key, q);
        let ecmp = suite.ecmp().select(src, dst, key, 0);
        assert_eq!(below, ecmp);
        assert_eq!(at, pv);
    }
}

/// Yen's paths are loopless, sorted by length, pairwise distinct, and
/// the first equals the BFS distance.
#[test]
fn ksp_properties() {
    let mut meta = Rng::seed_from_u64(0x4B5);
    for _ in 0..24 {
        let n = meta.gen_range(10u32..30);
        let seed = meta.gen_range(0u64..100);
        let k = meta.gen_range(2usize..6);
        let t = net(n, 4, seed);
        let apsp = t.apsp();
        let paths = k_shortest_paths(&t, 0, n - 1, k);
        assert!(!paths.is_empty());
        assert_eq!(paths[0].len() as u32 - 1, apsp[0][(n - 1) as usize]);
        let mut last = 0;
        for (i, p) in paths.iter().enumerate() {
            assert!(p.len() >= last);
            last = p.len();
            let set: std::collections::HashSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len(), "loop in path");
            for other in paths.iter().skip(i + 1) {
                assert_ne!(p, other);
            }
        }
    }
}

/// ECMP spreads different keys across all equal-cost first hops.
#[test]
fn ecmp_covers_all_choices() {
    let mut meta = Rng::seed_from_u64(0xC0F);
    let mut cases = 0;
    while cases < 24 {
        let n = meta.gen_range(12u32..30);
        let seed = meta.gen_range(0u64..50);
        let t = net(n, 4, seed);
        let table = EcmpTable::new(&t);
        let (src, dst) = (0u32, n - 1);
        let choices = table.choices(src, dst).len();
        if choices < 2 {
            continue;
        }
        cases += 1;
        let mut seen = std::collections::HashSet::new();
        for key in 0..400u64 {
            seen.insert(table.path(src, dst, key)[0]);
        }
        assert_eq!(seen.len(), choices, "hash misses some equal-cost links");
    }
}

/// Control-plane reconvergence: rebuilding a selector on the same
/// topology is behavior-preserving, and rebuilding on a degraded view
/// then again on the full view restores the original path set exactly
/// (the LinkUp-recovery invariant the simulator relies on).
#[test]
fn rebuild_restores_paths_after_link_up() {
    let mut meta = Rng::seed_from_u64(0x4EB1);
    for _ in 0..8 {
        let n = 2 * meta.gen_range(8u32..16);
        let seed = meta.gen_range(0u64..100);
        let t = net(n, 4, seed);
        let suite = RoutingSuite::new(&t);
        let selectors: Vec<Box<dyn PathSelector>> = vec![
            Box::new(suite.ecmp()),
            Box::new(suite.vlb()),
            Box::new(suite.hyb(100_000)),
            Box::new(dcn_routing::kspsel::KspSelector::new(&t, 4)),
        ];
        let degraded = t.with_random_failures(0.2, seed ^ 0xF411);
        for sel in &selectors {
            let down = sel.rebuild(&degraded);
            let up = down.rebuild(&t);
            assert_eq!(up.name(), sel.name());
            for key in 0..50u64 {
                for &(src, dst) in &[(0u32, n - 1), (1, n / 2)] {
                    let before = sel.select(src, dst, key, 0);
                    let after = up.select(src, dst, key, 0);
                    assert_eq!(
                        before,
                        after,
                        "{}: path set changed across down/up rebuild",
                        sel.name()
                    );
                    // The degraded selector still routes (the sampler keeps
                    // the survivor connected) and its paths are valid there.
                    let p = down.select(src, dst, key, 0);
                    assert_eq!(walk(&degraded, src, &p), dst, "{}", sel.name());
                }
            }
        }
    }
}
