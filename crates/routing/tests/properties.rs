//! Property-based tests for routing: path validity, shortest-path
//! optimality of ECMP, VLB leg structure, HYB threshold semantics.

use dcn_routing::ecmp::EcmpTable;
use dcn_routing::hyb::PathSelector;
use dcn_routing::ksp::k_shortest_paths;
use dcn_routing::RoutingSuite;
use dcn_topology::jellyfish::Jellyfish;
use dcn_topology::{NodeId, Topology};
use proptest::prelude::*;

fn net(n: u32, d: u32, seed: u64) -> Topology {
    Jellyfish::new(n, d, 2, seed).build()
}

/// Walks a link path from `src`, returning the final node.
fn walk(t: &Topology, src: NodeId, links: &[u32]) -> NodeId {
    let mut u = src;
    for &l in links {
        u = t.link(l).other(u);
    }
    u
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ECMP paths land at the destination and have exactly BFS length.
    #[test]
    fn ecmp_paths_shortest(n in 10u32..40, seed in 0u64..200, key in 0u64..1000) {
        prop_assume!((n * 4) % 2 == 0);
        let t = net(n, 4, seed);
        let table = EcmpTable::new(&t);
        let apsp = t.apsp();
        let (src, dst) = (0u32, n - 1);
        let p = table.path(src, dst, key);
        prop_assert_eq!(p.len() as u32, apsp[src as usize][dst as usize]);
        prop_assert_eq!(walk(&t, src, &p), dst);
    }

    /// VLB paths reach the destination and are at most the two ECMP legs
    /// long; HYB respects its byte threshold exactly.
    #[test]
    fn vlb_and_hyb_valid(n in 10u32..40, seed in 0u64..100, key in 0u64..500, q in 1u64..1_000_000) {
        prop_assume!((n * 4) % 2 == 0);
        let t = net(n, 4, seed);
        let suite = RoutingSuite::new(&t);
        let (src, dst) = (1u32, n - 2);
        prop_assume!(src != dst);

        let vlb = suite.vlb();
        let pv = vlb.select(src, dst, key, 0);
        prop_assert_eq!(walk(&t, src, &pv), dst);

        let hyb = suite.hyb(q);
        let below = hyb.select(src, dst, key, q - 1);
        let at = hyb.select(src, dst, key, q);
        let ecmp = suite.ecmp().select(src, dst, key, 0);
        prop_assert_eq!(below, ecmp);
        prop_assert_eq!(at, pv);
    }

    /// Yen's paths are loopless, sorted by length, pairwise distinct, and
    /// the first equals the BFS distance.
    #[test]
    fn ksp_properties(n in 10u32..30, seed in 0u64..100, k in 2usize..6) {
        prop_assume!((n * 4) % 2 == 0);
        let t = net(n, 4, seed);
        let apsp = t.apsp();
        let paths = k_shortest_paths(&t, 0, n - 1, k);
        prop_assert!(!paths.is_empty());
        prop_assert_eq!(paths[0].len() as u32 - 1, apsp[0][(n - 1) as usize]);
        let mut last = 0;
        for (i, p) in paths.iter().enumerate() {
            prop_assert!(p.len() >= last);
            last = p.len();
            let set: std::collections::HashSet<_> = p.iter().collect();
            prop_assert_eq!(set.len(), p.len(), "loop in path");
            for other in paths.iter().skip(i + 1) {
                prop_assert_ne!(p, other);
            }
        }
    }

    /// ECMP spreads different keys across all equal-cost first hops.
    #[test]
    fn ecmp_covers_all_choices(n in 12u32..30, seed in 0u64..50) {
        prop_assume!((n * 4) % 2 == 0);
        let t = net(n, 4, seed);
        let table = EcmpTable::new(&t);
        let (src, dst) = (0u32, n - 1);
        let choices = table.choices(src, dst).len();
        prop_assume!(choices >= 2);
        let mut seen = std::collections::HashSet::new();
        for key in 0..400u64 {
            seen.insert(table.path(src, dst, key)[0]);
        }
        prop_assert_eq!(seen.len(), choices, "hash misses some equal-cost links");
    }
}
