//! # dcn-json
//!
//! A minimal JSON value type, recursive-descent parser, and printer —
//! just enough for the workspace's config files (`dcnsim`) and result
//! files (`dcn-bench`) without an external dependency. Objects preserve
//! insertion order so emitted files stay diff-stable.
//!
//! ```
//! use dcn_json::Json;
//!
//! let v = Json::parse(r#"{"a": [1, 2.5, "x"], "b": true}"#).unwrap();
//! assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
//! assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
//! let round = Json::parse(&v.pretty()).unwrap();
//! assert_eq!(round.get("b").unwrap().as_bool(), Some(true));
//! ```

use std::fmt;

/// A JSON value. Numbers keep an integer representation when the source
/// (or constructor) was integral, so `u64` counters round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Num(n) => Some(n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => Some(n as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Two-space-indented pretty printing (the style of our result files).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => {
                use fmt::Write;
                write!(out, "{other}").unwrap();
            }
        }
    }
}

/// Compact (single-line) rendering.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{:.1}", n)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    f.write_str("null") // NaN / ±inf are not JSON
                }
            }
            Json::Str(s) => {
                let mut out = String::new();
                write_escaped(&mut out, s);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    let mut key = String::new();
                    write_escaped(&mut key, k);
                    write!(f, "{key}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        match i64::try_from(u) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::Num(u as f64),
        }
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::Int(u as i64)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::from(u as u64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            fields.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.b[self.i..].starts_with(b"\\u") {
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or("invalid \\u escape")?);
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 character, not byte by byte.
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.i + 4 > self.b.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + 4]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.i += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn parses_example_config_shape() {
        let cfg = r#"{
            "topology": { "kind": "xpander", "net_degree": 5 },
            "lambda": 8000.0,
            "window_ms": [50, 150],
            "seed": 1
        }"#;
        let v = Json::parse(cfg).unwrap();
        assert_eq!(
            v.get("topology").unwrap().get("kind").unwrap().as_str(),
            Some("xpander")
        );
        assert_eq!(v.get("lambda").unwrap().as_f64(), Some(8000.0));
        let w = v.get("window_ms").unwrap().as_array().unwrap();
        assert_eq!((w[0].as_u64(), w[1].as_u64()), (Some(50), Some(150)));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("line1\nline2\t\"quoted\" \\ end".into());
        let round = Json::parse(&original.to_string()).unwrap();
        assert_eq!(round, original);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".into()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn pretty_round_trips() {
        let v = Json::obj(vec![
            ("name", Json::from("fig")),
            ("rows", Json::from(vec![1.5f64, 2.0])),
            ("count", Json::from(3u64)),
            ("empty", Json::Arr(vec![])),
        ]);
        let round = Json::parse(&v.pretty()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn numbers_render_like_serde_json() {
        // Integers bare, whole floats with a trailing .0 — matches what the
        // previous serde_json output looked like for our result files.
        assert_eq!(Json::Int(5).to_string(), "5");
        assert_eq!(Json::Num(5.0).to_string(), "5.0");
        assert_eq!(Json::Num(0.125).to_string(), "0.125");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        let big = u64::MAX / 3;
        let v = Json::from(big);
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn object_order_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }
}
