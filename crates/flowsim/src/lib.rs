//! # dcn-flowsim
//!
//! A fast flow-level FCT simulator: flows hold fixed paths and share link
//! bandwidth max-min fairly (progressive filling), recomputed at every
//! flow arrival and departure. It abstracts away congestion control and
//! queueing, making paper-scale configurations (Fig 15's 3400+ servers)
//! tractable, and serves as a fluid cross-check of `dcn-sim`'s results.
//!
//! Routing uses the same [`dcn_routing::PathSelector`] implementations as
//! the packet simulator, with one semantic shift documented in DESIGN.md:
//! a flow's path is fixed at arrival, so HYB becomes "ECMP if the flow is
//! smaller than Q, VLB otherwise" (the per-flowlet switch cannot be
//! expressed in a fluid model).
//!
//! ```
//! use dcn_flowsim::{FlowSim, FlowSimConfig};
//! use dcn_routing::RoutingSuite;
//! use dcn_topology::fattree::FatTree;
//! use dcn_workloads::{tm::AllToAll, fsize::FixedSize, generate_flows};
//!
//! let t = FatTree::full(4).build();
//! let suite = RoutingSuite::new(&t);
//! let mut sim = FlowSim::new(&t, Box::new(suite.ecmp()), FlowSimConfig::default());
//! let pattern = AllToAll::new(&t, t.tors_with_servers());
//! sim.inject(&generate_flows(&pattern, &FixedSize(100_000), 200.0, 0.05, 3));
//! let records = sim.run(10.0);
//! assert!(records.iter().all(|r| r.fct_ns.is_some()));
//! ```

use dcn_routing::ecmp::hash3;
use dcn_routing::PathSelector;
use dcn_sim::stats::FlowRecord;
use dcn_topology::{Link, NodeId, Topology};
use dcn_workloads::FlowEvent;

/// Flow-level simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct FlowSimConfig {
    /// Switch-to-switch link rate in Gbps.
    pub link_gbps: f64,
    /// Server-to-ToR link rate in Gbps (set high to ignore server
    /// bottlenecks, as in the paper's ProjecToR comparison).
    pub server_link_gbps: f64,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            link_gbps: 10.0,
            server_link_gbps: 10.0,
        }
    }
}

struct ActiveFlow {
    id: usize,
    remaining_bits: f64,
    /// Directed channel indices this flow occupies.
    path: Vec<u32>,
    rate_gbps: f64,
}

struct PendingFlow {
    start_s: f64,
    src_rack: NodeId,
    dst_rack: NodeId,
    src_server: u32,
    dst_server: u32,
    bytes: u64,
}

/// The flow-level simulator.
pub struct FlowSim {
    /// Directed channel capacities in Gbps: 2 per topology link, then 2 per
    /// server (up, down).
    cap: Vec<f64>,
    links: Vec<Link>,
    host_base: u32,
    rack_base: Vec<u32>,
    num_servers: u32,
    selector: Box<dyn PathSelector>,
    pending: Vec<PendingFlow>,
    records: Vec<FlowRecord>,
}

impl FlowSim {
    pub fn new(topo: &Topology, selector: Box<dyn PathSelector>, cfg: FlowSimConfig) -> Self {
        let mut cap = Vec::with_capacity(topo.num_links() * 2);
        for l in topo.links() {
            cap.push(cfg.link_gbps * l.capacity);
            cap.push(cfg.link_gbps * l.capacity);
        }
        let host_base = cap.len() as u32;
        let mut rack_base = vec![u32::MAX; topo.num_nodes()];
        let mut num_servers = 0u32;
        for rack in 0..topo.num_nodes() as NodeId {
            let s = topo.servers_at(rack);
            if s == 0 {
                continue;
            }
            rack_base[rack as usize] = num_servers;
            for _ in 0..s {
                cap.push(cfg.server_link_gbps);
                cap.push(cfg.server_link_gbps);
                num_servers += 1;
            }
        }
        FlowSim {
            cap,
            links: topo.links().to_vec(),
            host_base,
            rack_base,
            num_servers,
            selector,
            pending: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Queues workload flows; call once before [`FlowSim::run`].
    pub fn inject(&mut self, events: &[FlowEvent]) {
        for e in events {
            let sb = self.rack_base[e.src.rack as usize];
            let db = self.rack_base[e.dst.rack as usize];
            assert!(
                sb != u32::MAX && db != u32::MAX,
                "endpoint rack has no servers"
            );
            self.pending.push(PendingFlow {
                start_s: e.start_s,
                src_rack: e.src.rack,
                dst_rack: e.dst.rack,
                src_server: sb + e.src.server,
                dst_server: db + e.dst.server,
                bytes: e.bytes,
            });
        }
        self.pending
            .sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
    }

    fn build_path(&self, f: &PendingFlow, id: usize) -> Vec<u32> {
        let mut path = vec![self.host_base + 2 * f.src_server];
        if f.src_rack != f.dst_rack {
            let key = hash3(id as u64, 0, 0xF10_1E7);
            // Fixed-at-arrival routing: HYB sees the flow's full size as
            // "bytes sent", picking ECMP for short flows, VLB for long.
            let links = self.selector.select(f.src_rack, f.dst_rack, key, f.bytes);
            let mut u = f.src_rack;
            for l in links {
                let link = self.links[l as usize];
                if link.a == u {
                    path.push(2 * l);
                    u = link.b;
                } else {
                    debug_assert_eq!(link.b, u);
                    path.push(2 * l + 1);
                    u = link.a;
                }
            }
            debug_assert_eq!(u, f.dst_rack);
        }
        path.push(self.host_base + 2 * f.dst_server + 1);
        path
    }

    /// Max-min fair rates by progressive filling (water-filling): raise all
    /// unfrozen flows' rates together; freeze flows crossing a saturated
    /// link; repeat.
    fn waterfill(&self, active: &mut [ActiveFlow]) {
        let mut residual = self.cap.clone();
        let mut flows_on = vec![0u32; self.cap.len()];
        for f in active.iter() {
            for &c in &f.path {
                flows_on[c as usize] += 1;
            }
        }
        let mut frozen = vec![false; active.len()];
        for f in active.iter_mut() {
            f.rate_gbps = 0.0;
        }
        let mut remaining = active.len();
        while remaining > 0 {
            let mut inc = f64::INFINITY;
            for (c, &n) in flows_on.iter().enumerate() {
                if n > 0 {
                    inc = inc.min(residual[c] / n as f64);
                }
            }
            if !inc.is_finite() {
                break;
            }
            for (i, f) in active.iter_mut().enumerate() {
                if !frozen[i] {
                    f.rate_gbps += inc;
                    for &c in &f.path {
                        residual[c as usize] -= inc;
                    }
                }
            }
            for i in 0..active.len() {
                if frozen[i] {
                    continue;
                }
                let saturated = active[i].path.iter().any(|&c| residual[c as usize] <= 1e-9);
                if saturated {
                    frozen[i] = true;
                    remaining -= 1;
                    for &c in &active[i].path {
                        flows_on[c as usize] -= 1;
                    }
                }
            }
        }
    }

    /// Runs to completion (or `max_time_s`). Returns per-flow records in
    /// arrival order.
    pub fn run(&mut self, max_time_s: f64) -> Vec<FlowRecord> {
        let pending = std::mem::take(&mut self.pending);
        let n = pending.len();
        self.records = pending
            .iter()
            .map(|p| FlowRecord::basic((p.start_s * 1e9) as u64, p.bytes, None))
            .collect();
        let mut active: Vec<ActiveFlow> = Vec::new();
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;

        while now <= max_time_s && (next_arrival < n || !active.is_empty()) {
            self.waterfill(&mut active);
            let mut t_dep = f64::INFINITY;
            for f in &active {
                if f.rate_gbps > 1e-12 {
                    t_dep = t_dep.min(now + f.remaining_bits / (f.rate_gbps * 1e9));
                }
            }
            let t_arr = if next_arrival < n {
                pending[next_arrival].start_s
            } else {
                f64::INFINITY
            };
            let t_next = t_dep.min(t_arr);
            if !t_next.is_finite() {
                break; // active flows with zero rate and no arrivals left
            }
            if t_next > max_time_s {
                break; // next event lies beyond the horizon
            }
            let dt = (t_next - now).max(0.0);
            for f in &mut active {
                f.remaining_bits -= f.rate_gbps * 1e9 * dt;
            }
            now = t_next;
            if t_arr <= t_dep {
                let p = &pending[next_arrival];
                let path = self.build_path(p, next_arrival);
                active.push(ActiveFlow {
                    id: next_arrival,
                    remaining_bits: (p.bytes as f64) * 8.0,
                    path,
                    rate_gbps: 0.0,
                });
                next_arrival += 1;
            } else {
                let mut i = 0;
                while i < active.len() {
                    if active[i].remaining_bits <= 1e-6 {
                        let id = active[i].id;
                        self.records[id].fct_ns = Some(
                            ((now - self.records[id].start_ns as f64 / 1e9) * 1e9).round() as u64,
                        );
                        active.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        self.records.clone()
    }

    pub fn num_servers(&self) -> u32 {
        self.num_servers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_routing::RoutingSuite;
    use dcn_topology::fattree::FatTree;
    use dcn_workloads::tm::Endpoint;

    fn flow(start_s: f64, src: (u32, u32), dst: (u32, u32), bytes: u64) -> FlowEvent {
        FlowEvent {
            start_s,
            src: Endpoint {
                rack: src.0,
                server: src.1,
            },
            dst: Endpoint {
                rack: dst.0,
                server: dst.1,
            },
            bytes,
        }
    }

    fn sim() -> FlowSim {
        let t = FatTree::full(4).build();
        let suite = RoutingSuite::new(&t);
        FlowSim::new(&t, Box::new(suite.ecmp()), FlowSimConfig::default())
    }

    #[test]
    fn lone_flow_gets_line_rate() {
        let mut s = sim();
        s.inject(&[flow(0.0, (0, 0), (12, 0), 10_000_000)]);
        let rec = s.run(100.0);
        // 10 MB at 10 Gbps = 8 ms exactly in the fluid model.
        let fct = rec[0].fct_ns.unwrap();
        assert!((fct as f64 - 8e6).abs() < 1e3, "fct {fct} ns");
    }

    #[test]
    fn two_flows_share_host_downlink() {
        let mut s = sim();
        s.inject(&[
            flow(0.0, (0, 0), (12, 0), 5_000_000),
            flow(0.0, (4, 0), (12, 0), 5_000_000),
        ]);
        let rec = s.run(100.0);
        // Shared 10 G downlink: each gets 5 Gbps → 8 ms.
        for r in &rec {
            let fct = r.fct_ns.unwrap();
            assert!((fct as f64 - 8e6).abs() < 1e3, "fct {fct} ns");
        }
    }

    #[test]
    fn short_flow_unaffected_by_disjoint_traffic() {
        let mut s = sim();
        s.inject(&[
            flow(0.0, (0, 0), (4, 0), 1_000_000),
            flow(0.0, (8, 1), (12, 1), 1_000_000),
        ]);
        let rec = s.run(100.0);
        for r in &rec {
            let fct = r.fct_ns.unwrap();
            assert!((fct as f64 - 0.8e6).abs() < 1e3, "fct {fct} ns");
        }
    }

    #[test]
    fn departure_releases_bandwidth() {
        // A 1 MB flow and a 5 MB flow share a downlink; after the short one
        // leaves, the long one speeds up: FCT < sequential, > fair-share.
        let mut s = sim();
        s.inject(&[
            flow(0.0, (0, 0), (12, 0), 1_000_000),
            flow(0.0, (4, 0), (12, 0), 5_000_000),
        ]);
        let rec = s.run(100.0);
        let f_short = rec[0].fct_ns.unwrap() as f64 / 1e6;
        let f_long = rec[1].fct_ns.unwrap() as f64 / 1e6;
        assert!((f_short - 1.6).abs() < 0.01, "short {f_short} ms"); // 1MB at 5G
                                                                     // Long: 1.6 ms at 5 G (1 MB done) + remaining 4 MB at 10 G = 4.8 ms.
        assert!((f_long - 4.8).abs() < 0.01, "long {f_long} ms");
    }

    #[test]
    fn late_arrival_preempts_fair_share() {
        let mut s = sim();
        s.inject(&[
            flow(0.0, (0, 0), (12, 0), 10_000_000),
            flow(0.004, (4, 0), (12, 0), 1_000_000),
        ]);
        let rec = s.run(100.0);
        // First is alone until 4 ms (5 MB done); they then share the
        // downlink at 5 Gbps each until the 1 MB flow leaves at 5.6 ms
        // (first now at 6 MB); the last 4 MB at 10 Gbps ends at 8.8 ms.
        let f1 = rec[1].fct_ns.unwrap() as f64 / 1e6;
        assert!((f1 - 1.6).abs() < 0.01, "second flow {f1} ms");
        let f0 = rec[0].fct_ns.unwrap() as f64 / 1e6;
        assert!((f0 - 8.8).abs() < 0.01, "first flow {f0} ms");
    }

    #[test]
    fn unfinished_flows_when_horizon_short() {
        let mut s = sim();
        s.inject(&[flow(0.0, (0, 0), (12, 0), 100_000_000)]);
        let rec = s.run(0.001);
        assert!(rec[0].fct_ns.is_none());
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut s = sim();
            s.inject(&[
                flow(0.0, (0, 0), (12, 0), 3_000_000),
                flow(0.001, (4, 1), (8, 0), 700_000),
            ]);
            s.run(100.0).iter().map(|r| r.fct_ns).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
