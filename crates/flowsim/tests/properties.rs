//! Property-style tests for the flow-level simulator: max-min fairness
//! invariants over random workloads. Seeded sweeps stand in for proptest.

use dcn_flowsim::{FlowSim, FlowSimConfig};
use dcn_rng::Rng;
use dcn_routing::RoutingSuite;
use dcn_topology::fattree::FatTree;
use dcn_workloads::tm::Endpoint;
use dcn_workloads::{generate_flows, AllToAll, FixedSize, FlowEvent};

/// Every flow finishes, never faster than its line-rate floor.
#[test]
fn fct_floor_holds() {
    let mut meta = Rng::seed_from_u64(0xF10);
    let t = FatTree::full(4).build();
    let mut cases = 0;
    while cases < 12 {
        let bytes = meta.gen_range(10_000u64..5_000_000);
        let lambda = 100.0 + meta.gen_range(0.0..1900.0);
        let seed = meta.gen_range(0u64..50);
        let pattern = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pattern, &FixedSize(bytes), lambda, 0.01, seed);
        if flows.is_empty() {
            continue;
        }
        cases += 1;
        let suite = RoutingSuite::new(&t);
        let mut sim = FlowSim::new(&t, Box::new(suite.ecmp()), FlowSimConfig::default());
        sim.inject(&flows);
        let rec = sim.run(1000.0);
        let floor = (bytes as f64 * 0.8) as u64; // bytes*8/10Gbps in ns
        for r in &rec {
            let fct = r.fct_ns.expect("unfinished");
            assert!(fct + 1000 >= floor, "fct {fct} under floor {floor}");
        }
    }
}

/// N equal flows into one server each get exactly rate/N (fluid
/// fairness is exact, not approximate).
#[test]
fn equal_flows_split_exactly() {
    let mut meta = Rng::seed_from_u64(0x3917);
    let t = FatTree::full(8).build();
    for _ in 0..12 {
        let n = meta.gen_range(2u32..6);
        let mb = meta.gen_range(1u64..6);
        let suite = RoutingSuite::new(&t);
        let mut sim = FlowSim::new(&t, Box::new(suite.ecmp()), FlowSimConfig::default());
        let bytes = mb * 1_000_000;
        let racks = t.tors_with_servers();
        let flows: Vec<FlowEvent> = (0..n)
            .map(|i| FlowEvent {
                start_s: 0.0,
                src: Endpoint {
                    rack: racks[1 + i as usize],
                    server: 0,
                },
                dst: Endpoint {
                    rack: racks[0],
                    server: 0,
                },
                bytes,
            })
            .collect();
        sim.inject(&flows);
        let rec = sim.run(1000.0);
        let expect_ns = bytes as f64 * 8.0 / (10.0 / n as f64);
        for r in &rec {
            let fct = r.fct_ns.unwrap() as f64;
            assert!(
                (fct - expect_ns).abs() < expect_ns * 0.01,
                "fct {fct} vs expected {expect_ns}"
            );
        }
    }
}

/// Determinism across runs and routing schemes.
#[test]
fn deterministic() {
    let mut meta = Rng::seed_from_u64(0xDF5);
    let t = FatTree::full(4).build();
    for _ in 0..9 {
        let mode = meta.gen_range(0u8..3);
        let seed = meta.gen_range(0u64..20);
        let run = || {
            let suite = RoutingSuite::new(&t);
            let sel: Box<dyn dcn_routing::PathSelector> = match mode {
                0 => Box::new(suite.ecmp()),
                1 => Box::new(suite.vlb()),
                _ => Box::new(suite.hyb(100_000)),
            };
            let pattern = AllToAll::new(&t, t.tors_with_servers());
            let flows = generate_flows(&pattern, &FixedSize(300_000), 500.0, 0.01, seed);
            let mut sim = FlowSim::new(&t, sel, FlowSimConfig::default());
            sim.inject(&flows);
            sim.run(1000.0).iter().map(|r| r.fct_ns).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
