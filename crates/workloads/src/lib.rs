//! # dcn-workloads
//!
//! Workload generation for the SIGCOMM 2017 reproduction: the paper's
//! flow-size distributions (pFabric web search, Pareto-HULL — Fig 8),
//! traffic patterns (A2A(x), Permute(x), Skew(θ,ϕ) — §6.4/§6.7), the
//! longest-matching traffic matrices of the fluid-flow evaluation (§5),
//! and seeded Poisson flow arrivals.
//!
//! ```
//! use dcn_topology::fattree::FatTree;
//! use dcn_workloads::{fsize::PFabricWebSearch, tm::AllToAll, arrivals::generate_flows};
//!
//! let t = FatTree::full(4).build();
//! let pattern = AllToAll::new(&t, t.tors_with_servers());
//! let flows = generate_flows(&pattern, &PFabricWebSearch::new(), 1000.0, 0.1, 42);
//! assert!(!flows.is_empty());
//! ```

pub mod arrivals;
pub mod fluid;
pub mod fsize;
pub mod tm;

pub use arrivals::{generate_flows, FlowEvent};
pub use fsize::{FixedSize, FlowSizeDist, PFabricWebSearch, ParetoHull};
pub use tm::{
    active_fraction, active_racks_for_servers, longest_matching, AllToAll, Endpoint,
    ExplicitServers, PairSkew, Permutation, Skew, TrafficPattern,
};
