//! Flow size distributions (paper §6.4, Fig 8).
//!
//! Two empirical distributions drive all packet-level experiments:
//! the pFabric *web search* distribution (mean ≈ 2.4 MB, heavy-tailed)
//! and HULL's bounded-Pareto distribution (mean ≈ 100 KB, 90th
//! percentile below 100 KB).

use dcn_rng::Rng;

/// A sampleable distribution over flow sizes in bytes.
pub trait FlowSizeDist {
    fn sample(&self, rng: &mut Rng) -> u64;
    /// Analytic or empirical mean in bytes.
    fn mean(&self) -> f64;
    fn name(&self) -> &'static str;
    /// CDF value at `bytes` (used to regenerate Fig 8).
    fn cdf(&self, bytes: u64) -> f64;
}

/// The pFabric web-search flow size distribution (Alizadeh et al.,
/// SIGCOMM 2013), as a piecewise-linear CDF. The paper quotes its mean
/// as ≈ 2.4 MB; roughly half the *flows* are short (<100 KB) while most
/// *bytes* come from multi-megabyte flows.
#[derive(Clone, Debug)]
pub struct PFabricWebSearch {
    /// (size in bytes, cumulative probability), strictly increasing.
    points: Vec<(f64, f64)>,
}

impl Default for PFabricWebSearch {
    fn default() -> Self {
        // Interpolation points of the published web-search CDF.
        let points = vec![
            (0.0, 0.0),
            (10e3, 0.15),
            (20e3, 0.20),
            (30e3, 0.30),
            (50e3, 0.40),
            (80e3, 0.53),
            (200e3, 0.60),
            (1e6, 0.70),
            (2e6, 0.80),
            (5e6, 0.90),
            (10e6, 0.95),
            (30e6, 1.00),
        ];
        PFabricWebSearch { points }
    }
}

impl PFabricWebSearch {
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlowSizeDist for PFabricWebSearch {
    fn sample(&self, rng: &mut Rng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // Inverse-CDF with linear interpolation between points.
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if u <= p1 {
                let f = (u - p0) / (p1 - p0);
                return (x0 + f * (x1 - x0)).max(1.0) as u64;
            }
        }
        self.points.last().unwrap().0 as u64
    }

    fn mean(&self) -> f64 {
        // Piecewise-linear CDF ⇒ uniform within each segment.
        self.points
            .windows(2)
            .map(|w| {
                let (x0, p0) = w[0];
                let (x1, p1) = w[1];
                (p1 - p0) * (x0 + x1) / 2.0
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "pFabric web search"
    }

    fn cdf(&self, bytes: u64) -> f64 {
        let x = bytes as f64;
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if x <= x1 {
                return p0 + (x - x0) / (x1 - x0) * (p1 - p0);
            }
        }
        1.0
    }
}

/// HULL's bounded-Pareto flow sizes (Alizadeh et al., NSDI 2012):
/// shape α = 1.05, scaled so the mean is ≈ 100 KB, upper-bounded to keep
/// simulations finite. Most flows are tiny; Fig 8 shows the 90th
/// percentile under 100 KB.
#[derive(Clone, Debug)]
pub struct ParetoHull {
    pub alpha: f64,
    pub min_bytes: f64,
    pub max_bytes: f64,
}

impl Default for ParetoHull {
    fn default() -> Self {
        // With the 1 GB tail cap, a minimum of ≈10.9 KB makes the bounded
        // Pareto's mean exactly 100 KB, with CDF(100 KB) ≈ 0.90 — both
        // properties Fig 8 quotes.
        ParetoHull {
            alpha: 1.05,
            min_bytes: 10_944.0,
            max_bytes: 1e9,
        }
    }
}

impl ParetoHull {
    pub fn new() -> Self {
        Self::default()
    }
}

impl FlowSizeDist for ParetoHull {
    fn sample(&self, rng: &mut Rng) -> u64 {
        // Inverse CDF of the bounded Pareto on [L, H].
        let (l, h, a) = (self.min_bytes, self.max_bytes, self.alpha);
        let u: f64 = rng.gen_range(0.0..1.0);
        let la = l.powf(a);
        let ha = h.powf(a);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a);
        x.clamp(l, h) as u64
    }

    fn mean(&self) -> f64 {
        let (l, h, a) = (self.min_bytes, self.max_bytes, self.alpha);
        // Mean of the bounded Pareto.
        let la = l.powf(a);
        let ha = h.powf(a);
        (la / (1.0 - la / ha)) * (a / (a - 1.0)) * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
    }

    fn name(&self) -> &'static str {
        "Pareto-HULL"
    }

    fn cdf(&self, bytes: u64) -> f64 {
        let (l, h, a) = (self.min_bytes, self.max_bytes, self.alpha);
        let x = (bytes as f64).clamp(l, h);
        let la = l.powf(a);
        let ha = h.powf(a);
        ((1.0 - la / x.powf(a)) / (1.0 - la / ha)).clamp(0.0, 1.0)
    }
}

/// Constant flow size (unit tests and micro-benchmarks).
#[derive(Clone, Copy, Debug)]
pub struct FixedSize(pub u64);

impl FlowSizeDist for FixedSize {
    fn sample(&self, _rng: &mut Rng) -> u64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0 as f64
    }
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn cdf(&self, bytes: u64) -> f64 {
        if bytes >= self.0 {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &dyn FlowSizeDist, n: usize) -> f64 {
        let mut rng = Rng::seed_from_u64(1);
        (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn pfabric_mean_matches_paper() {
        let d = PFabricWebSearch::new();
        // Paper (Fig 8): "Mean = 2.4MB".
        assert!(
            d.mean() > 1.8e6 && d.mean() < 3.0e6,
            "analytic mean {} outside 1.8–3.0 MB",
            d.mean()
        );
        let emp = empirical_mean(&d, 200_000);
        assert!((emp - d.mean()).abs() / d.mean() < 0.05, "empirical {emp}");
    }

    #[test]
    fn pfabric_short_flow_fraction() {
        // Roughly 55–60% of flows are "short" (< 100 KB) in this CDF.
        let d = PFabricWebSearch::new();
        let f = d.cdf(100_000);
        assert!(f > 0.5 && f < 0.65, "CDF(100 KB) = {f}");
    }

    #[test]
    fn pfabric_cdf_monotone() {
        let d = PFabricWebSearch::new();
        let mut last = -1.0;
        for b in [
            0u64,
            1_000,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
        ] {
            let v = d.cdf(b);
            assert!(v >= last && (0.0..=1.0).contains(&v));
            last = v;
        }
    }

    #[test]
    fn pareto_mean_near_100kb() {
        let d = ParetoHull::new();
        // Paper (Fig 8): "Mean = 100KB".
        assert!(
            d.mean() > 60e3 && d.mean() < 140e3,
            "analytic mean {}",
            d.mean()
        );
    }

    #[test]
    fn pareto_mostly_short_flows() {
        // Fig 8: 90th percentile below 100 KB.
        let d = ParetoHull::new();
        assert!(d.cdf(100_000) > 0.9, "CDF(100 KB) = {}", d.cdf(100_000));
        let mut rng = Rng::seed_from_u64(2);
        let short = (0..50_000).filter(|_| d.sample(&mut rng) < 100_000).count();
        assert!(short as f64 / 50_000.0 > 0.9);
    }

    #[test]
    fn pareto_respects_bounds() {
        let d = ParetoHull::new();
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!(s as f64 >= d.min_bytes && s as f64 <= d.max_bytes);
        }
    }

    #[test]
    fn samples_deterministic_per_seed() {
        let d = PFabricWebSearch::new();
        let mut a = Rng::seed_from_u64(9);
        let mut b = Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    fn fixed_size_trivial() {
        let d = FixedSize(1234);
        let mut rng = Rng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 1234);
        assert_eq!(d.cdf(1233), 0.0);
        assert_eq!(d.cdf(1234), 1.0);
    }
}
