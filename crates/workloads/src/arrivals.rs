//! Poisson flow arrivals and the experiment framework of §6.4: a total
//! flow count `F`, an aggregate arrival rate `λ`, endpoints drawn from a
//! [`TrafficPattern`], sizes from a [`FlowSizeDist`].

use crate::fsize::FlowSizeDist;
use crate::tm::{Endpoint, TrafficPattern};
use dcn_rng::Rng;

/// One flow to be injected into a simulator.
#[derive(Clone, Copy, Debug)]
pub struct FlowEvent {
    /// Arrival time in seconds from simulation start.
    pub start_s: f64,
    pub src: Endpoint,
    pub dst: Endpoint,
    pub bytes: u64,
}

/// Generates Poisson arrivals at aggregate rate `lambda` (flows/second)
/// until `horizon_s`, with endpoints and sizes sampled per flow.
/// Fixing `seed` fixes the entire workload — the paper's "identical set
/// of flows is run … by fixing the seed for the random number generator".
pub fn generate_flows(
    pattern: &dyn TrafficPattern,
    sizes: &dyn FlowSizeDist,
    lambda: f64,
    horizon_s: f64,
    seed: u64,
) -> Vec<FlowEvent> {
    assert!(lambda > 0.0 && horizon_s > 0.0);
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity((lambda * horizon_s * 1.1) as usize + 16);
    loop {
        t += exponential(&mut rng, lambda);
        if t >= horizon_s {
            break;
        }
        let (src, dst) = pattern.sample(&mut rng);
        let bytes = sizes.sample(&mut rng).max(1);
        out.push(FlowEvent {
            start_s: t,
            src,
            dst,
            bytes,
        });
    }
    out
}

fn exponential(rng: &mut Rng, rate: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsize::FixedSize;
    use crate::tm::AllToAll;
    use dcn_topology::fattree::FatTree;

    #[test]
    fn arrival_rate_matches() {
        let t = FatTree::full(4).build();
        let pat = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pat, &FixedSize(1000), 5_000.0, 2.0, 1);
        let n = flows.len() as f64;
        assert!(
            (n - 10_000.0).abs() < 400.0,
            "{n} arrivals for expectation 10000"
        );
        // Sorted in time, all within horizon.
        for w in flows.windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
        }
        assert!(flows.last().unwrap().start_s < 2.0);
    }

    #[test]
    fn deterministic_workload_per_seed() {
        let t = FatTree::full(4).build();
        let pat = AllToAll::new(&t, t.tors_with_servers());
        let a = generate_flows(&pat, &FixedSize(7), 100.0, 1.0, 42);
        let b = generate_flows(&pat, &FixedSize(7), 100.0, 1.0, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.start_s, y.start_s);
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
        }
    }

    #[test]
    fn interarrivals_look_exponential() {
        let t = FatTree::full(4).build();
        let pat = AllToAll::new(&t, t.tors_with_servers());
        let flows = generate_flows(&pat, &FixedSize(1), 1_000.0, 20.0, 3);
        let gaps: Vec<f64> = flows
            .windows(2)
            .map(|w| w[1].start_s - w[0].start_s)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 1e-3).abs() < 1e-4, "mean gap {mean}");
        // Coefficient of variation of an exponential is 1.
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.1, "cv {cv}");
    }
}
