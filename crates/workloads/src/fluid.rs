//! Fluid-model traffic matrices at rack granularity — the TM families of
//! §2.2 for which the paper proves (or conjectures) that throughput cannot
//! scale more than proportionally: permutations, all-to-all, many-to-one,
//! one-to-many, and uniformly random hose-compliant matrices.
//!
//! A [`FluidTm`] is a list of `(src, dst, demand)` commodities; demands
//! are in server line-rate units, normalized so that at concurrent
//! throughput `t = 1` every involved server is exactly saturated (the
//! hose model of §2.2).
#![allow(clippy::needless_range_loop)] // matrix math reads best indexed

use dcn_rng::Rng;
use dcn_topology::{NodeId, Topology};

/// A rack-level fluid traffic matrix.
#[derive(Clone, Debug)]
pub struct FluidTm {
    pub name: String,
    /// (source rack, destination rack, demand in line-rate units).
    pub commodities: Vec<(NodeId, NodeId, f64)>,
}

impl FluidTm {
    /// Total demand entering the network.
    pub fn total_demand(&self) -> f64 {
        self.commodities.iter().map(|c| c.2).sum()
    }

    /// Hose-model audit: per-rack egress/ingress demand must not exceed
    /// the rack's server capacity. Returns the worst utilization.
    pub fn hose_utilization(&self, t: &Topology) -> f64 {
        let n = t.num_nodes();
        let mut out = vec![0.0f64; n];
        let mut inn = vec![0.0f64; n];
        for &(s, d, dem) in &self.commodities {
            out[s as usize] += dem;
            inn[d as usize] += dem;
        }
        let mut worst = 0.0f64;
        for r in 0..n {
            let cap = t.servers_at(r as NodeId) as f64;
            if cap > 0.0 {
                worst = worst.max(out[r] / cap).max(inn[r] / cap);
            } else {
                assert!(
                    out[r] == 0.0 && inn[r] == 0.0,
                    "demand at serverless rack {r}"
                );
            }
        }
        worst
    }
}

/// All-to-all over the given racks: each rack spreads its full server
/// capacity equally over the other participants.
pub fn all_to_all(t: &Topology, racks: &[NodeId]) -> FluidTm {
    assert!(racks.len() >= 2);
    let mut commodities = Vec::new();
    for &s in racks {
        let share = t.servers_at(s) as f64 / (racks.len() - 1) as f64;
        for &d in racks {
            if s != d {
                commodities.push((s, d, share));
            }
        }
    }
    FluidTm {
        name: format!("all-to-all({} racks)", racks.len()),
        commodities,
    }
}

/// Rack-level permutation: rack i sends its full capacity to its cycle
/// successor.
pub fn permutation(t: &Topology, racks: &[NodeId], seed: u64) -> FluidTm {
    use dcn_rng::SliceRandom;
    assert!(racks.len() >= 2);
    let mut order = racks.to_vec();
    let mut rng = Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let commodities = (0..order.len())
        .map(|i| {
            let s = order[i];
            (s, order[(i + 1) % order.len()], t.servers_at(s) as f64)
        })
        .collect();
    FluidTm {
        name: format!("permutation({} racks)", racks.len()),
        commodities,
    }
}

/// Many-to-one: every source sends an equal share of the sink's ingress
/// capacity (the sink's servers saturate at t = 1).
pub fn many_to_one(t: &Topology, sources: &[NodeId], sink: NodeId) -> FluidTm {
    assert!(!sources.is_empty());
    assert!(!sources.contains(&sink));
    let share = t.servers_at(sink) as f64 / sources.len() as f64;
    let commodities = sources.iter().map(|&s| (s, sink, share)).collect();
    FluidTm {
        name: format!("many-to-one({} sources)", sources.len()),
        commodities,
    }
}

/// One-to-many: the source spreads its egress capacity over the sinks.
pub fn one_to_many(t: &Topology, source: NodeId, sinks: &[NodeId]) -> FluidTm {
    assert!(!sinks.is_empty());
    assert!(!sinks.contains(&source));
    let share = t.servers_at(source) as f64 / sinks.len() as f64;
    let commodities = sinks.iter().map(|&d| (source, d, share)).collect();
    FluidTm {
        name: format!("one-to-many({} sinks)", sinks.len()),
        commodities,
    }
}

/// A random hose-compliant TM: random positive demands, then scaled rows
/// and columns (Sinkhorn-style) until every rack's egress and ingress sit
/// at its server capacity. Used by the Conjecture 2.4 explorer.
pub fn random_hose(t: &Topology, racks: &[NodeId], seed: u64) -> FluidTm {
    assert!(racks.len() >= 2);
    let n = racks.len();
    let mut rng = Rng::seed_from_u64(seed);
    let mut m = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                m[i][j] = rng.gen_range(0.05..1.0);
            }
        }
    }
    let caps: Vec<f64> = racks.iter().map(|&r| t.servers_at(r) as f64).collect();
    // Sinkhorn scaling toward the hose marginals.
    for _ in 0..200 {
        for i in 0..n {
            let row: f64 = m[i].iter().sum();
            if row > 0.0 {
                let f = caps[i] / row;
                for v in &mut m[i] {
                    *v *= f;
                }
            }
        }
        for j in 0..n {
            let col: f64 = (0..n).map(|i| m[i][j]).sum();
            if col > 0.0 {
                let f = caps[j] / col;
                for i in 0..n {
                    m[i][j] *= f;
                }
            }
        }
    }
    let mut commodities = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if m[i][j] > 1e-9 {
                commodities.push((racks[i], racks[j], m[i][j]));
            }
        }
    }
    FluidTm {
        name: format!("random-hose({n} racks, seed {seed})"),
        commodities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::FatTree;

    fn net() -> Topology {
        FatTree::full(4).build()
    }

    #[test]
    fn all_to_all_saturates_hose() {
        let t = net();
        let racks = t.tors_with_servers();
        let tm = all_to_all(&t, &racks);
        assert!((tm.hose_utilization(&t) - 1.0).abs() < 1e-9);
        assert_eq!(tm.commodities.len(), racks.len() * (racks.len() - 1));
    }

    #[test]
    fn permutation_saturates_hose() {
        let t = net();
        let racks = t.tors_with_servers();
        let tm = permutation(&t, &racks, 3);
        assert!((tm.hose_utilization(&t) - 1.0).abs() < 1e-9);
        assert_eq!(tm.commodities.len(), racks.len());
    }

    #[test]
    fn many_to_one_sink_bound() {
        let t = net();
        let racks = t.tors_with_servers();
        let tm = many_to_one(&t, &racks[1..], racks[0]);
        // Sink ingress saturated; sources mostly idle.
        assert!((tm.hose_utilization(&t) - 1.0).abs() < 1e-9);
        let total = tm.total_demand();
        assert!((total - t.servers_at(racks[0]) as f64).abs() < 1e-9);
    }

    #[test]
    fn one_to_many_source_bound() {
        let t = net();
        let racks = t.tors_with_servers();
        let tm = one_to_many(&t, racks[0], &racks[1..]);
        assert!((tm.hose_utilization(&t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_hose_is_hose_compliant() {
        let t = net();
        let racks = t.tors_with_servers();
        for seed in 0..5 {
            let tm = random_hose(&t, &racks, seed);
            let u = tm.hose_utilization(&t);
            assert!(u <= 1.0 + 1e-6, "utilization {u}");
            assert!(u >= 0.95, "Sinkhorn did not converge: {u}");
        }
    }

    #[test]
    fn random_hose_deterministic() {
        let t = net();
        let racks = t.tors_with_servers();
        let a = random_hose(&t, &racks, 9);
        let b = random_hose(&t, &racks, 9);
        assert_eq!(a.commodities.len(), b.commodities.len());
        for (x, y) in a.commodities.iter().zip(&b.commodities) {
            assert_eq!(x.0, y.0);
            assert!((x.2 - y.2).abs() < 1e-12);
        }
    }
}
