//! Traffic patterns (paper §6.4 and §6.7) and the longest-matching traffic
//! matrices of the fluid-flow evaluation (§5, following topobench \[20\]).

use dcn_rng::Rng;
use dcn_rng::SliceRandom;
use dcn_topology::{NodeId, Topology};

/// A traffic endpoint: a server slot within a rack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Endpoint {
    pub rack: NodeId,
    /// Server index within the rack, `0..servers_at(rack)`.
    pub server: u32,
}

/// A sampleable distribution over (source, destination) server pairs.
pub trait TrafficPattern {
    fn sample(&self, rng: &mut Rng) -> (Endpoint, Endpoint);
    fn name(&self) -> String;
    /// Racks that can appear in samples (for active-server accounting).
    fn active_racks(&self) -> &[NodeId];
}

fn pick_server(rng: &mut Rng, servers: u32) -> u32 {
    assert!(servers > 0, "rack without servers used as endpoint");
    rng.gen_range(0..servers)
}

/// A2A(x): uniform all-to-all over the servers of the active racks
/// (§6.4). Source and destination are distinct *servers*; same-rack pairs
/// are allowed, matching "any pair of servers at active racks".
pub struct AllToAll {
    active: Vec<NodeId>,
    servers: Vec<u32>,
    /// Prefix sums of server counts for uniform server-slot sampling.
    cum: Vec<u64>,
    total: u64,
}

impl AllToAll {
    pub fn new(t: &Topology, active: Vec<NodeId>) -> Self {
        assert!(!active.is_empty());
        let servers: Vec<u32> = active.iter().map(|&r| t.servers_at(r)).collect();
        assert!(
            servers.iter().all(|&s| s > 0),
            "active rack without servers"
        );
        let mut cum = Vec::with_capacity(servers.len());
        let mut total = 0u64;
        for &s in &servers {
            total += s as u64;
            cum.push(total);
        }
        AllToAll {
            active,
            servers,
            cum,
            total,
        }
    }

    fn slot(&self, idx: u64) -> Endpoint {
        let i = self.cum.partition_point(|&c| c <= idx);
        let before = if i == 0 { 0 } else { self.cum[i - 1] };
        Endpoint {
            rack: self.active[i],
            server: (idx - before) as u32,
        }
    }
}

impl TrafficPattern for AllToAll {
    fn sample(&self, rng: &mut Rng) -> (Endpoint, Endpoint) {
        let a = rng.gen_range(0..self.total);
        let mut b = rng.gen_range(0..self.total - 1);
        if b >= a {
            b += 1;
        }
        (self.slot(a), self.slot(b))
    }

    fn name(&self) -> String {
        format!("A2A({} racks)", self.active.len())
    }

    fn active_racks(&self) -> &[NodeId] {
        &self.active
    }
}

impl AllToAll {
    /// Total active servers (used to scale per-server arrival rates).
    pub fn total_servers(&self) -> u64 {
        self.total
    }

    pub fn servers_per_rack(&self) -> &[u32] {
        &self.servers
    }
}

/// Permute(x): a fixed random permutation over the active racks; each
/// rack sends only to its successor (§6.4). "Challenging … rack-to-rack
/// consolidation of flows limits opportunities for load balancing."
pub struct Permutation {
    active: Vec<NodeId>,
    /// `partner[i]` = index (into `active`) that rack i sends to.
    partner: Vec<usize>,
    servers: Vec<u32>,
}

impl Permutation {
    /// Builds a single random cycle over the active racks so every rack
    /// has exactly one destination and one source, with no fixed points.
    pub fn new(t: &Topology, active: Vec<NodeId>, seed: u64) -> Self {
        assert!(active.len() >= 2, "permutation needs ≥ 2 racks");
        let mut rng = Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..active.len()).collect();
        order.shuffle(&mut rng);
        let mut partner = vec![0usize; active.len()];
        for w in 0..order.len() {
            partner[order[w]] = order[(w + 1) % order.len()];
        }
        let servers = active.iter().map(|&r| t.servers_at(r)).collect();
        Permutation {
            active,
            partner,
            servers,
        }
    }

    /// The rack-level pairs (src, dst) of the permutation.
    pub fn pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.partner
            .iter()
            .enumerate()
            .map(|(i, &j)| (self.active[i], self.active[j]))
            .collect()
    }
}

impl TrafficPattern for Permutation {
    fn sample(&self, rng: &mut Rng) -> (Endpoint, Endpoint) {
        let i = rng.gen_range(0..self.active.len());
        let j = self.partner[i];
        (
            Endpoint {
                rack: self.active[i],
                server: pick_server(rng, self.servers[i]),
            },
            Endpoint {
                rack: self.active[j],
                server: pick_server(rng, self.servers[j]),
            },
        )
    }

    fn name(&self) -> String {
        format!("Permute({} racks)", self.active.len())
    }

    fn active_racks(&self) -> &[NodeId] {
        &self.active
    }
}

/// Skew(θ, ϕ) (§6.7): θ fraction of racks are "hot" and attract ϕ of the
/// traffic. Each rack's participation weight is ϕ/|hot| (hot) or
/// (1−ϕ)/|cold| (cold); rack-pair probability is the normalized product.
/// `Skew(0.04, 0.77)` models a simplification of the ProjecToR Microsoft
/// trace (77% of bytes between 4% of rack pairs).
pub struct Skew {
    racks: Vec<NodeId>,
    weights: Vec<f64>,
    servers: Vec<u32>,
    hot: Vec<NodeId>,
    theta: f64,
    phi: f64,
}

impl Skew {
    pub fn new(t: &Topology, racks: Vec<NodeId>, theta: f64, phi: f64, seed: u64) -> Self {
        assert!(racks.len() >= 2);
        assert!((0.0..=1.0).contains(&theta) && (0.0..=1.0).contains(&phi));
        let mut rng = Rng::seed_from_u64(seed);
        let mut shuffled = racks.clone();
        shuffled.shuffle(&mut rng);
        let n_hot = ((racks.len() as f64 * theta).round() as usize).clamp(1, racks.len());
        let hot: Vec<NodeId> = shuffled[..n_hot].to_vec();
        let is_hot: std::collections::HashSet<_> = hot.iter().copied().collect();
        let n_cold = racks.len() - n_hot;
        let weights = racks
            .iter()
            .map(|r| {
                if is_hot.contains(r) {
                    phi / n_hot as f64
                } else if n_cold > 0 {
                    (1.0 - phi) / n_cold as f64
                } else {
                    0.0
                }
            })
            .collect();
        let servers = racks.iter().map(|&r| t.servers_at(r)).collect();
        Skew {
            racks,
            weights,
            servers,
            hot,
            theta,
            phi,
        }
    }

    /// The ProjecToR-like workload the paper uses in §6.6/§6.7.
    pub fn projector_like(t: &Topology, racks: Vec<NodeId>, seed: u64) -> Self {
        Self::new(t, racks, 0.04, 0.77, seed)
    }

    pub fn hot_racks(&self) -> &[NodeId] {
        &self.hot
    }

    fn sample_rack(&self, rng: &mut Rng) -> usize {
        let total: f64 = self.weights.iter().sum();
        let mut u = rng.gen_range(0.0..total);
        for (i, &w) in self.weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        self.weights.len() - 1
    }
}

impl TrafficPattern for Skew {
    fn sample(&self, rng: &mut Rng) -> (Endpoint, Endpoint) {
        let i = self.sample_rack(rng);
        let j = loop {
            let j = self.sample_rack(rng);
            if j != i {
                break j;
            }
        };
        (
            Endpoint {
                rack: self.racks[i],
                server: pick_server(rng, self.servers[i]),
            },
            Endpoint {
                rack: self.racks[j],
                server: pick_server(rng, self.servers[j]),
            },
        )
    }

    fn name(&self) -> String {
        format!("Skew({:.2},{:.2})", self.theta, self.phi)
    }

    fn active_racks(&self) -> &[NodeId] {
        &self.racks
    }
}

/// Selects the active racks for a fraction-x experiment, per §6.4:
/// fat-trees use the *first* x fraction (pods fill in order); flat
/// networks use a *random* x fraction.
pub fn active_fraction(racks: &[NodeId], fraction: f64, random: bool, seed: u64) -> Vec<NodeId> {
    assert!((0.0..=1.0).contains(&fraction));
    let k = ((racks.len() as f64 * fraction).round() as usize).clamp(1, racks.len());
    if random {
        let mut rng = Rng::seed_from_u64(seed);
        let mut v = racks.to_vec();
        v.shuffle(&mut rng);
        v.truncate(k);
        v
    } else {
        racks[..k].to_vec()
    }
}

/// Uniform all-to-all over an explicit list of server slots — used when an
/// experiment pins the exact endpoints (e.g. Fig 7b's "10 servers on two
/// adjacent racks").
pub struct ExplicitServers {
    slots: Vec<Endpoint>,
    racks: Vec<NodeId>,
}

impl ExplicitServers {
    pub fn new(slots: Vec<Endpoint>) -> Self {
        assert!(slots.len() >= 2, "need at least two endpoints");
        let mut racks: Vec<NodeId> = slots.iter().map(|e| e.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        ExplicitServers { slots, racks }
    }

    /// The first `per_rack` server slots on each listed rack.
    pub fn first_on_racks(t: &Topology, racks: &[NodeId], per_rack: u32) -> Self {
        let mut slots = Vec::new();
        for &r in racks {
            assert!(
                t.servers_at(r) >= per_rack,
                "rack {r} lacks {per_rack} servers"
            );
            for i in 0..per_rack {
                slots.push(Endpoint { rack: r, server: i });
            }
        }
        Self::new(slots)
    }
}

impl TrafficPattern for ExplicitServers {
    fn sample(&self, rng: &mut Rng) -> (Endpoint, Endpoint) {
        let a = rng.gen_range(0..self.slots.len());
        let mut b = rng.gen_range(0..self.slots.len() - 1);
        if b >= a {
            b += 1;
        }
        (self.slots[a], self.slots[b])
    }

    fn name(&self) -> String {
        format!("Explicit({} servers)", self.slots.len())
    }

    fn active_racks(&self) -> &[NodeId] {
        &self.racks
    }
}

/// Selects active racks until they hold at least `n_servers` servers —
/// the paper keeps "the number of active servers … always the same in any
/// comparisons" across networks with different rack sizes. Fat-trees use
/// the first racks in order; flat networks a random subset (§6.4).
pub fn active_racks_for_servers(
    t: &Topology,
    racks: &[NodeId],
    n_servers: u32,
    random: bool,
    seed: u64,
) -> Vec<NodeId> {
    let order: Vec<NodeId> = if random {
        let mut rng = Rng::seed_from_u64(seed);
        let mut v = racks.to_vec();
        v.shuffle(&mut rng);
        v
    } else {
        racks.to_vec()
    };
    let mut out = Vec::new();
    let mut have = 0u32;
    for r in order {
        if have >= n_servers {
            break;
        }
        have += t.servers_at(r);
        out.push(r);
    }
    assert!(
        have >= n_servers,
        "network has only {have} servers, need {n_servers}"
    );
    out
}

/// Pair-level skew: a stand-in for the ProjecToR Microsoft trace (§6.6),
/// where "77% of bytes \[are\] transferred between 4% of the rack-pairs".
/// Unlike [`Skew`]'s per-rack product weights, the hot set here is a set
/// of ordered rack *pairs* holding `hot_traffic` of the probability mass —
/// and, as in the measured trace, those pairs concentrate on a small
/// subset of racks (the hottest ~20%), so hot ToRs really do saturate.
pub struct PairSkew {
    pairs: Vec<(usize, usize)>,
    /// Cumulative weights aligned with `pairs`.
    cum: Vec<f64>,
    racks: Vec<NodeId>,
    servers: Vec<u32>,
    hot_pairs: usize,
}

impl PairSkew {
    pub fn new(
        t: &Topology,
        racks: Vec<NodeId>,
        hot_pair_frac: f64,
        hot_traffic: f64,
        seed: u64,
    ) -> Self {
        assert!(racks.len() >= 2);
        assert!((0.0..=1.0).contains(&hot_pair_frac) && (0.0..=1.0).contains(&hot_traffic));
        let mut rng = Rng::seed_from_u64(seed);
        let n = racks.len();
        let all_pairs = n * (n - 1);
        let hot_pairs = ((all_pairs as f64 * hot_pair_frac).round() as usize).clamp(1, all_pairs);
        // Hot pairs live among the hottest racks: the smallest rack subset
        // whose ordered pairs can host them (at least 20% of racks), which
        // reproduces the trace's rack-level concentration.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut hot_rack_count = (n / 5).max(2);
        while hot_rack_count * (hot_rack_count - 1) < hot_pairs {
            hot_rack_count += 1;
        }
        let hot_racks = &order[..hot_rack_count];
        let mut hot_set: Vec<(usize, usize)> = hot_racks
            .iter()
            .flat_map(|&i| {
                hot_racks
                    .iter()
                    .filter(move |&&j| j != i)
                    .map(move |&j| (i, j))
            })
            .collect();
        hot_set.shuffle(&mut rng);
        hot_set.truncate(hot_pairs);
        let in_hot: std::collections::HashSet<(usize, usize)> = hot_set.iter().copied().collect();
        let mut pairs: Vec<(usize, usize)> = hot_set;
        for i in 0..n {
            for j in 0..n {
                if i != j && !in_hot.contains(&(i, j)) {
                    pairs.push((i, j));
                }
            }
        }
        let cold_pairs = pairs.len() - hot_pairs;
        let mut cum = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (i, _) in pairs.iter().enumerate() {
            acc += if i < hot_pairs {
                hot_traffic / hot_pairs as f64
            } else {
                (1.0 - hot_traffic) / cold_pairs.max(1) as f64
            };
            cum.push(acc);
        }
        let servers = racks.iter().map(|&r| t.servers_at(r)).collect();
        PairSkew {
            pairs,
            cum,
            racks,
            servers,
            hot_pairs,
        }
    }

    /// The ProjecToR-trace stand-in: Skew over 4% of pairs carrying 77%.
    pub fn projector_trace(t: &Topology, racks: Vec<NodeId>, seed: u64) -> Self {
        Self::new(t, racks, 0.04, 0.77, seed)
    }

    pub fn hot_pair_count(&self) -> usize {
        self.hot_pairs
    }
}

impl TrafficPattern for PairSkew {
    fn sample(&self, rng: &mut Rng) -> (Endpoint, Endpoint) {
        let total = *self.cum.last().unwrap();
        let u = rng.gen_range(0.0..total);
        let idx = self
            .cum
            .partition_point(|&c| c <= u)
            .min(self.pairs.len() - 1);
        let (i, j) = self.pairs[idx];
        (
            Endpoint {
                rack: self.racks[i],
                server: pick_server(rng, self.servers[i]),
            },
            Endpoint {
                rack: self.racks[j],
                server: pick_server(rng, self.servers[j]),
            },
        )
    }

    fn name(&self) -> String {
        "PairSkew(ProjecToR-like)".to_string()
    }

    fn active_racks(&self) -> &[NodeId] {
        &self.racks
    }
}

/// Longest-matching traffic matrix (§5, topobench \[20\]): participating
/// racks are paired to (heuristically) maximize total pairwise distance —
/// "flows along long paths consume resources on many edges". Returns the
/// directed rack pairs (both directions of each match).
///
/// Heuristic: all rack pairs sorted by hop distance descending, greedily
/// matched; stops after `floor(fraction·racks/2)` matches.
pub fn longest_matching(
    t: &Topology,
    racks: &[NodeId],
    fraction: f64,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    assert!(racks.len() >= 2);
    let want = (((racks.len() as f64 * fraction) / 2.0).round() as usize).max(1);
    // Distances among racks only.
    let mut pairs: Vec<(u32, usize, usize)> = Vec::new();
    for (i, &ri) in racks.iter().enumerate() {
        let dist = t.bfs_distances(ri);
        for (j, &rj) in racks.iter().enumerate().skip(i + 1) {
            pairs.push((dist[rj as usize], i, j));
        }
    }
    // Shuffle first so ties break randomly but deterministically, then
    // stable-sort by distance descending.
    let mut rng = Rng::seed_from_u64(seed);
    pairs.shuffle(&mut rng);
    pairs.sort_by_key(|p| std::cmp::Reverse(p.0));

    let mut used = vec![false; racks.len()];
    let mut out = Vec::with_capacity(want * 2);
    for (_, i, j) in pairs {
        if out.len() / 2 >= want {
            break;
        }
        if !used[i] && !used[j] {
            used[i] = true;
            used[j] = true;
            out.push((racks[i], racks[j]));
            out.push((racks[j], racks[i]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::fattree::FatTree;
    use dcn_topology::jellyfish::Jellyfish;

    fn rng() -> Rng {
        Rng::seed_from_u64(7)
    }

    #[test]
    fn a2a_endpoints_valid_and_distinct() {
        let t = FatTree::full(4).build();
        let racks = t.tors_with_servers();
        let a2a = AllToAll::new(&t, racks.clone());
        let mut r = rng();
        for _ in 0..1000 {
            let (s, d) = a2a.sample(&mut r);
            assert!(racks.contains(&s.rack) && racks.contains(&d.rack));
            assert!(s.server < t.servers_at(s.rack));
            assert!(d.server < t.servers_at(d.rack));
            assert!(s != d, "sampled identical endpoints");
        }
    }

    #[test]
    fn a2a_roughly_uniform_over_racks() {
        let t = FatTree::full(4).build();
        let racks = t.tors_with_servers();
        let a2a = AllToAll::new(&t, racks.clone());
        let mut counts = std::collections::HashMap::new();
        let mut r = rng();
        for _ in 0..16_000 {
            let (s, _) = a2a.sample(&mut r);
            *counts.entry(s.rack).or_insert(0usize) += 1;
        }
        for &rack in &racks {
            let c = counts[&rack] as f64 / 16_000.0;
            let expect = 1.0 / racks.len() as f64;
            assert!((c - expect).abs() < expect * 0.3, "rack {rack}: {c}");
        }
    }

    #[test]
    fn permutation_is_a_single_cycle_without_fixed_points() {
        let t = FatTree::full(8).build();
        let racks = t.tors_with_servers();
        let p = Permutation::new(&t, racks.clone(), 3);
        let pairs = p.pairs();
        assert_eq!(pairs.len(), racks.len());
        for &(a, b) in &pairs {
            assert_ne!(a, b);
        }
        // Every rack appears exactly once as source and once as dest.
        let mut srcs: Vec<_> = pairs.iter().map(|p| p.0).collect();
        let mut dsts: Vec<_> = pairs.iter().map(|p| p.1).collect();
        srcs.sort_unstable();
        dsts.sort_unstable();
        let mut expect = racks.clone();
        expect.sort_unstable();
        assert_eq!(srcs, expect);
        assert_eq!(dsts, expect);
    }

    #[test]
    fn permutation_samples_respect_pairs() {
        let t = FatTree::full(4).build();
        let racks = t.tors_with_servers();
        let p = Permutation::new(&t, racks, 3);
        let pairs: std::collections::HashSet<_> = p.pairs().into_iter().collect();
        let mut r = rng();
        for _ in 0..500 {
            let (s, d) = p.sample(&mut r);
            assert!(pairs.contains(&(s.rack, d.rack)));
        }
    }

    #[test]
    fn skew_hot_racks_dominate() {
        let t = Jellyfish::new(50, 5, 4, 1).build();
        let racks = t.tors_with_servers();
        let skew = Skew::new(&t, racks, 0.04, 0.77, 5);
        let hot: std::collections::HashSet<_> = skew.hot_racks().iter().copied().collect();
        assert_eq!(hot.len(), 2); // 4% of 50
        let mut r = rng();
        let mut hot_hits = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let (s, _) = skew.sample(&mut r);
            if hot.contains(&s.rack) {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.77).abs() < 0.03, "hot source fraction {frac}");
    }

    #[test]
    fn active_fraction_deterministic_and_sized() {
        let racks: Vec<u32> = (0..100).collect();
        let a = active_fraction(&racks, 0.31, true, 9);
        let b = active_fraction(&racks, 0.31, true, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 31);
        let c = active_fraction(&racks, 0.31, false, 0);
        assert_eq!(c, (0..31).collect::<Vec<u32>>());
    }

    #[test]
    fn active_racks_for_servers_exactness() {
        let t = FatTree::full(8).build(); // 32 racks x 4 servers
        let racks = t.tors_with_servers();
        let sel = active_racks_for_servers(&t, &racks, 40, false, 0);
        assert_eq!(sel.len(), 10);
        assert_eq!(sel, racks[..10].to_vec());
        let rnd = active_racks_for_servers(&t, &racks, 40, true, 3);
        assert_eq!(rnd.len(), 10);
        assert_ne!(rnd, sel);
        // Deterministic per seed.
        assert_eq!(rnd, active_racks_for_servers(&t, &racks, 40, true, 3));
    }

    #[test]
    #[should_panic]
    fn active_racks_for_servers_overflow_panics() {
        let t = FatTree::full(4).build();
        let racks = t.tors_with_servers();
        active_racks_for_servers(&t, &racks, 1000, false, 0);
    }

    #[test]
    fn explicit_servers_sampling() {
        let t = FatTree::full(4).build();
        let pat = ExplicitServers::first_on_racks(&t, &[0, 4], 2);
        assert_eq!(pat.active_racks(), &[0, 4]);
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = pat.sample(&mut r);
            assert!(a != b);
            assert!(a.rack == 0 || a.rack == 4);
            assert!(a.server < 2 && b.server < 2);
        }
    }

    #[test]
    fn pair_skew_hot_pairs_carry_hot_traffic() {
        let t = Jellyfish::new(50, 5, 4, 1).build();
        let racks = t.tors_with_servers();
        let ps = PairSkew::projector_trace(&t, racks, 9);
        // 4% of 50·49 ordered pairs.
        assert_eq!(ps.hot_pair_count(), 98);
        let mut r = rng();
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            let (s, d) = ps.sample(&mut r);
            assert_ne!(s.rack, d.rack);
            *counts.entry((s.rack, d.rack)).or_insert(0usize) += 1;
        }
        // Top-4% of pairs by observed count should carry ≈77% of samples.
        let mut v: Vec<usize> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = v.iter().take(98).sum();
        let frac = top as f64 / n as f64;
        assert!((frac - 0.77).abs() < 0.05, "hot fraction {frac}");
    }

    #[test]
    fn longest_matching_prefers_distant_racks() {
        let t = FatTree::full(4).build();
        let racks = t.tors_with_servers();
        let pairs = longest_matching(&t, &racks, 1.0, 1);
        assert_eq!(pairs.len(), racks.len()); // both directions
                                              // In a fat-tree, the longest matching should be cross-pod (hop
                                              // distance 4) for every pair.
        for &(a, b) in &pairs {
            assert_ne!(t.group(a), t.group(b), "intra-pod pair in longest matching");
        }
    }

    #[test]
    fn longest_matching_fraction_counts() {
        let t = FatTree::full(8).build();
        let racks = t.tors_with_servers(); // 32 racks
        let pairs = longest_matching(&t, &racks, 0.5, 1);
        assert_eq!(pairs.len(), 16); // 8 matches × 2 directions
                                     // Endpoints are disjoint.
        let mut seen = std::collections::HashSet::new();
        for &(a, _) in &pairs {
            assert!(seen.insert(a));
        }
    }
}
