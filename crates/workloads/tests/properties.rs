//! Property-based tests for workload generation: every sample must be a
//! valid endpoint pair, distributions must hit their documented moments.

use dcn_topology::jellyfish::Jellyfish;
use dcn_workloads::fsize::{FlowSizeDist, PFabricWebSearch, ParetoHull};
use dcn_workloads::tm::{
    active_fraction, longest_matching, AllToAll, PairSkew, Permutation, Skew, TrafficPattern,
};
use dcn_workloads::generate_flows;
use proptest::prelude::*;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn topo(seed: u64) -> dcn_topology::Topology {
    Jellyfish::new(30, 5, 3, seed).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All patterns produce endpoints on active racks with valid server
    /// slots and never a self-pair.
    #[test]
    fn patterns_produce_valid_endpoints(seed in 0u64..100, frac in 0.2f64..1.0) {
        let t = topo(seed);
        let racks = active_fraction(&t.tors_with_servers(), frac, true, seed);
        prop_assume!(racks.len() >= 2);
        let patterns: Vec<Box<dyn TrafficPattern>> = vec![
            Box::new(AllToAll::new(&t, racks.clone())),
            Box::new(Permutation::new(&t, racks.clone(), seed)),
            Box::new(Skew::new(&t, racks.clone(), 0.1, 0.8, seed)),
            Box::new(PairSkew::new(&t, racks.clone(), 0.05, 0.8, seed)),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbeef);
        for p in &patterns {
            for _ in 0..50 {
                let (a, b) = p.sample(&mut rng);
                prop_assert!(racks.contains(&a.rack), "{}: bad src", p.name());
                prop_assert!(racks.contains(&b.rack), "{}: bad dst", p.name());
                prop_assert!(a.server < t.servers_at(a.rack));
                prop_assert!(b.server < t.servers_at(b.rack));
                prop_assert!(a != b, "{}: self pair", p.name());
            }
        }
    }

    /// Flow size samples respect distribution supports; empirical CDF
    /// tracks the analytic one.
    #[test]
    fn size_distributions_consistent(seed in 0u64..50, probe in 10_000u64..10_000_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for d in [&PFabricWebSearch::new() as &dyn FlowSizeDist, &ParetoHull::new()] {
            let n = 20_000;
            let below = (0..n).filter(|_| d.sample(&mut rng) <= probe).count();
            let emp = below as f64 / n as f64;
            let ana = d.cdf(probe);
            prop_assert!((emp - ana).abs() < 0.03, "{}: cdf({probe}) emp {emp} vs {ana}", d.name());
        }
    }

    /// Poisson arrivals: count concentrates around λ·T; times sorted and
    /// within the horizon.
    #[test]
    fn poisson_counts(lambda in 500.0f64..5000.0, seed in 0u64..50) {
        let t = topo(1);
        let pat = AllToAll::new(&t, t.tors_with_servers());
        let horizon = 1.0;
        let flows = generate_flows(&pat, &PFabricWebSearch::new(), lambda, horizon, seed);
        let expect = lambda * horizon;
        let sd = expect.sqrt();
        prop_assert!((flows.len() as f64 - expect).abs() < 6.0 * sd,
            "{} arrivals for expectation {expect}", flows.len());
        for w in flows.windows(2) {
            prop_assert!(w[0].start_s <= w[1].start_s);
        }
        prop_assert!(flows.last().unwrap().start_s < horizon);
    }

    /// Longest matching: a true matching (disjoint endpoints), both
    /// directions present, sized by the fraction.
    #[test]
    fn longest_matching_is_matching(seed in 0u64..100, frac in 0.2f64..1.0) {
        let t = topo(seed);
        let racks = t.tors_with_servers();
        let pairs = longest_matching(&t, &racks, frac, seed);
        prop_assert!(pairs.len().is_multiple_of(2));
        let mut sources = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            prop_assert!(a != b);
            prop_assert!(sources.insert(a), "rack {a} matched twice");
            prop_assert!(pairs.contains(&(b, a)), "missing reverse of ({a},{b})");
        }
        let want = ((racks.len() as f64 * frac / 2.0).round() as usize).max(1) * 2;
        prop_assert!(pairs.len() <= want);
    }
}
