//! Property-style tests for workload generation: every sample must be a
//! valid endpoint pair, distributions must hit their documented moments.
//! Parameter sweeps are driven by a seeded dcn-rng loop.

use dcn_rng::Rng;
use dcn_topology::jellyfish::Jellyfish;
use dcn_workloads::fsize::{FlowSizeDist, PFabricWebSearch, ParetoHull};
use dcn_workloads::generate_flows;
use dcn_workloads::tm::{
    active_fraction, longest_matching, AllToAll, PairSkew, Permutation, Skew, TrafficPattern,
};

fn topo(seed: u64) -> dcn_topology::Topology {
    Jellyfish::new(30, 5, 3, seed).build()
}

/// All patterns produce endpoints on active racks with valid server
/// slots and never a self-pair.
#[test]
fn patterns_produce_valid_endpoints() {
    let mut meta = Rng::seed_from_u64(0xE0D);
    let mut cases = 0;
    while cases < 24 {
        let seed = meta.gen_range(0u64..100);
        let frac = meta.gen_range(0.2f64..1.0);
        let t = topo(seed);
        let racks = active_fraction(&t.tors_with_servers(), frac, true, seed);
        if racks.len() < 2 {
            continue;
        }
        cases += 1;
        let patterns: Vec<Box<dyn TrafficPattern>> = vec![
            Box::new(AllToAll::new(&t, racks.clone())),
            Box::new(Permutation::new(&t, racks.clone(), seed)),
            Box::new(Skew::new(&t, racks.clone(), 0.1, 0.8, seed)),
            Box::new(PairSkew::new(&t, racks.clone(), 0.05, 0.8, seed)),
        ];
        let mut rng = Rng::seed_from_u64(seed ^ 0xbeef);
        for p in &patterns {
            for _ in 0..50 {
                let (a, b) = p.sample(&mut rng);
                assert!(racks.contains(&a.rack), "{}: bad src", p.name());
                assert!(racks.contains(&b.rack), "{}: bad dst", p.name());
                assert!(a.server < t.servers_at(a.rack));
                assert!(b.server < t.servers_at(b.rack));
                assert!(a != b, "{}: self pair", p.name());
            }
        }
    }
}

/// Flow size samples respect distribution supports; empirical CDF
/// tracks the analytic one.
#[test]
fn size_distributions_consistent() {
    let mut meta = Rng::seed_from_u64(0x512E);
    for _ in 0..24 {
        let seed = meta.gen_range(0u64..50);
        let probe = meta.gen_range(10_000u64..10_000_000);
        let mut rng = Rng::seed_from_u64(seed);
        for d in [
            &PFabricWebSearch::new() as &dyn FlowSizeDist,
            &ParetoHull::new(),
        ] {
            let n = 20_000;
            let below = (0..n).filter(|_| d.sample(&mut rng) <= probe).count();
            let emp = below as f64 / n as f64;
            let ana = d.cdf(probe);
            assert!(
                (emp - ana).abs() < 0.03,
                "{}: cdf({probe}) emp {emp} vs {ana}",
                d.name()
            );
        }
    }
}

/// Poisson arrivals: count concentrates around λ·T; times sorted and
/// within the horizon.
#[test]
fn poisson_counts() {
    let mut meta = Rng::seed_from_u64(0xA22);
    for _ in 0..24 {
        let lambda = meta.gen_range(500.0f64..5000.0);
        let seed = meta.gen_range(0u64..50);
        let t = topo(1);
        let pat = AllToAll::new(&t, t.tors_with_servers());
        let horizon = 1.0;
        let flows = generate_flows(&pat, &PFabricWebSearch::new(), lambda, horizon, seed);
        let expect = lambda * horizon;
        let sd = expect.sqrt();
        assert!(
            (flows.len() as f64 - expect).abs() < 6.0 * sd,
            "{} arrivals for expectation {expect}",
            flows.len()
        );
        for w in flows.windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
        }
        assert!(flows.last().unwrap().start_s < horizon);
    }
}

/// Longest matching: a true matching (disjoint endpoints), both
/// directions present, sized by the fraction.
#[test]
fn longest_matching_is_matching() {
    let mut meta = Rng::seed_from_u64(0x3A7C);
    for _ in 0..24 {
        let seed = meta.gen_range(0u64..100);
        let frac = meta.gen_range(0.2f64..1.0);
        let t = topo(seed);
        let racks = t.tors_with_servers();
        let pairs = longest_matching(&t, &racks, frac, seed);
        assert!(pairs.len().is_multiple_of(2));
        let mut sources = std::collections::HashSet::new();
        for &(a, b) in &pairs {
            assert!(a != b);
            assert!(sources.insert(a), "rack {a} matched twice");
            assert!(pairs.contains(&(b, a)), "missing reverse of ({a},{b})");
        }
        let want = ((racks.len() as f64 * frac / 2.0).round() as usize).max(1) * 2;
        assert!(pairs.len() <= want);
    }
}
