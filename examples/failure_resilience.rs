//! Extension demo: graceful degradation under random link failures.
//! Expanders spread damage across their flat fabric; a fat-tree's layered
//! structure concentrates it. Fluid-model throughput after failing an
//! increasing fraction of links.
//!
//! Run with: `cargo run --release --example failure_resilience`

use beyond_fattrees::maxflow::FlowNetwork;
use beyond_fattrees::prelude::*;

fn throughput(t: &Topology, seed: u64) -> f64 {
    let racks = t.tors_with_servers();
    let pairs = longest_matching(t, &racks, 1.0, seed);
    let commodities: Vec<Commodity> = pairs
        .iter()
        .map(|&(a, b)| Commodity {
            src: a,
            dst: b,
            demand: t.servers_at(a) as f64,
        })
        .collect();
    let net = FlowNetwork::from_topology(t);
    max_concurrent_flow(&net, &commodities, GkOptions::default())
        .throughput
        .min(1.0)
}

fn main() {
    let pair = paper_networks(Scale::Small, 7);
    println!(
        "{:>10} {:>16} {:>16} {:>18}",
        "failures", "fat-tree tput", "xpander tput", "xpander retained"
    );
    let ft0 = throughput(&pair.fat_tree, 1);
    let xp0 = throughput(&pair.xpander, 1);
    for &frac in &[0.0, 0.05, 0.10, 0.15] {
        let ft = throughput(&pair.fat_tree.with_random_failures(frac, 11), 1);
        let xp = throughput(&pair.xpander.with_random_failures(frac, 11), 1);
        println!(
            "{:>9.0}% {:>16.3} {:>16.3} {:>17.0}%",
            frac * 100.0,
            ft / ft0,
            xp / xp0,
            xp / xp0 * 100.0
        );
    }
    println!("\n(throughput normalized to each network's failure-free value;");
    println!(" the expander loses capacity roughly linearly with failed links)");
}
