//! The §6 routing story in one run: ECMP collapses between adjacent
//! expander racks (one shortest path), VLB wastes capacity under uniform
//! load, and the HYB hybrid is robust to both.
//!
//! Run with: `cargo run --release --example routing_hybrid`

use beyond_fattrees::prelude::*;

fn run(topo: &Topology, routing: Routing, pattern: &dyn TrafficPattern, lambda: f64) -> Metrics {
    let flows = generate_flows(pattern, &PFabricWebSearch::new(), lambda, 0.06, 3);
    let (m, _) = run_fct_experiment(
        topo,
        routing,
        SimConfig::default(),
        &flows,
        (10 * MS, 50 * MS),
        20 * SEC,
    );
    m
}

fn main() {
    let xp = Xpander::for_switches(5, 54, 3, 1).build();

    // Scenario A (Fig 7b): only two adjacent racks are active.
    let l = xp.link(0);
    let neighbors = ExplicitServers::first_on_racks(&xp, &[l.a, l.b], 3);
    // Scenario B (Fig 7c): uniform all-to-all over every server.
    let uniform = AllToAll::new(&xp, xp.tors_with_servers());

    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "scenario", "ECMP", "VLB", "HYB"
    );
    for (name, pattern, lambda) in [
        (
            "adjacent racks (skewed)",
            &neighbors as &dyn TrafficPattern,
            6000.0,
        ),
        (
            "all-to-all (uniform)",
            &uniform as &dyn TrafficPattern,
            160.0 * 162.0,
        ),
    ] {
        let mut row = Vec::new();
        for routing in [Routing::Ecmp, Routing::Vlb, Routing::PAPER_HYB] {
            row.push(run(&xp, routing, pattern, lambda).avg_fct_ms);
        }
        println!(
            "{:<28} {:>9.2}ms {:>9.2}ms {:>9.2}ms",
            name, row[0], row[1], row[2]
        );
    }
    println!("\nECMP loses on the skewed case, VLB on the uniform one;");
    println!("HYB (ECMP below Q=100KB, then VLB per flowlet) is close to the");
    println!("better scheme in both — the paper's §6.3 result.");
}
