//! The §5 head-to-head in miniature: a static expander against the
//! abstract dynamic-topology models at equal cost (δ = 1.5), under
//! longest-matching traffic of decreasing spread.
//!
//! Run with: `cargo run --release --example dynamic_models`

use beyond_fattrees::maxflow::FlowNetwork;
use beyond_fattrees::prelude::*;

fn main() {
    // SlimFly-style config scaled down: 50 ToRs, 7 network ports,
    // 7 servers each (≈ the paper's 1:1 net:server ratio).
    let sf = SlimFly::new(5, 7);
    let t = sf.build();
    let net_ports = sf.net_degree() as f64;
    let servers = 7.0;
    let delta = delta_lowest(); // ≈ 1.5 from Table 1

    let unrestricted = UnrestrictedDynamic::equal_cost(net_ports, servers, delta);
    let restricted = RestrictedDynamic::equal_cost(net_ports, servers as usize, delta);
    let racks = t.tors_with_servers();
    let net = FlowNetwork::from_topology(&t);

    println!(
        "δ = {delta:.2}: the dynamic designs afford {:.1} flexible ports per ToR\n",
        net_ports / delta
    );
    println!(
        "{:>10} {:>12} {:>18} {:>16}",
        "fraction", "static", "unrestricted dyn", "restricted dyn"
    );
    for &x in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        let pairs = longest_matching(&t, &racks, x, 1);
        let commodities: Vec<Commodity> = pairs
            .iter()
            .map(|&(a, b)| Commodity {
                src: a,
                dst: b,
                demand: servers,
            })
            .collect();
        let lam = max_concurrent_flow(&net, &commodities, GkOptions::default())
            .throughput
            .min(1.0);
        let active = (racks.len() as f64 * x).round() as usize;
        println!(
            "{:>10.1} {:>12.3} {:>18.3} {:>16.3}",
            x,
            lam,
            unrestricted.throughput(),
            restricted.throughput_bound(active)
        );
    }
    println!("\nThe static expander overtakes the equal-cost unrestricted dynamic");
    println!("model as traffic concentrates — §5's core finding.");
}
