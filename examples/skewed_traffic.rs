//! Flexibility under skew, in the fluid-flow model: how per-server
//! throughput scales as fewer servers participate, for an expander versus
//! an equal-cost oversubscribed fat-tree, against the TP ideal (§2, §5).
//!
//! Run with: `cargo run --release --example skewed_traffic`

use beyond_fattrees::maxflow::FlowNetwork;
use beyond_fattrees::prelude::*;

fn throughput_at(t: &Topology, x: f64) -> f64 {
    let racks = t.tors_with_servers();
    let pairs = longest_matching(t, &racks, x, 1);
    let commodities: Vec<Commodity> = pairs
        .iter()
        .map(|&(a, b)| Commodity {
            src: a,
            dst: b,
            demand: t.servers_at(a) as f64,
        })
        .collect();
    let net = FlowNetwork::from_topology(t);
    max_concurrent_flow(&net, &commodities, GkOptions::default())
        .throughput
        .min(1.0)
}

fn main() {
    // Same switch budget: 30 six-port switches each.
    let xpander = Xpander::for_switches(4, 30, 2, 1).build();
    let fat_tree = FatTree::oversubscribed_core(6, 1).build(); // 48 switches, oversubscribed

    println!(
        "{:>9} {:>12} {:>20} {:>14}",
        "fraction", "xpander", "oversub fat-tree", "TP ideal"
    );
    let alpha = throughput_at(&xpander, 1.0);
    for &x in &[0.2, 0.4, 0.6, 0.8, 1.0] {
        println!(
            "{:>9.1} {:>12.3} {:>20.3} {:>14.3}",
            x,
            throughput_at(&xpander, x),
            throughput_at(&fat_tree, x),
            tp_throughput(alpha, x)
        );
    }
    println!("\nThe expander tracks throughput proportionality: as traffic");
    println!("concentrates on fewer servers, the leftover capacity is");
    println!("re-usable — which the fat-tree's layered bottlenecks forbid.");
}
