//! Quickstart: the paper's headline experiment in miniature.
//!
//! Builds the §6.4 equal-cost pair — a full-bandwidth fat-tree and an
//! Xpander at ~2/3 the cost — runs the same skewed workload on both with
//! the paper's HYB routing on the Xpander, and prints the three headline
//! metrics. Expected outcome: the cheaper Xpander matches the fat-tree.
//!
//! Run with: `cargo run --release --example quickstart`

use beyond_fattrees::prelude::*;

fn main() {
    // Small scale (k=8 fat-tree, 128 servers) finishes in under a minute;
    // Scale::Paper is the full §6.4 configuration.
    let pair = paper_networks(Scale::Small, 42);
    println!(
        "fat-tree: {} switches / {} servers   xpander: {} switches / {} servers",
        pair.fat_tree.num_nodes(),
        pair.fat_tree.num_servers(),
        pair.xpander.num_nodes(),
        pair.xpander.num_servers(),
    );

    let window = (10 * MS, 40 * MS);
    let lambda = 100.0 * pair.fat_tree.num_servers() as f64;
    let sizes = PFabricWebSearch::new();

    for (name, topo, routing) in [
        ("fat-tree + ECMP", &pair.fat_tree, Routing::Ecmp),
        ("xpander + HYB ", &pair.xpander, Routing::PAPER_HYB),
    ] {
        // Skewed traffic: 77% of bytes between 4% of rack pairs.
        let pattern = Skew::projector_like(topo, topo.tors_with_servers(), 7);
        let flows = generate_flows(&pattern, &sizes, lambda, 0.05, 7);
        let (m, c) = run_fct_experiment(
            topo,
            routing,
            SimConfig::default(),
            &flows,
            window,
            10 * SEC,
        );
        println!(
            "{name}: {} flows | avg FCT {:.3} ms | p99 short FCT {:.3} ms | long-flow tput {:.2} Gbps | drops {}",
            m.flows, m.avg_fct_ms, m.p99_short_fct_ms, m.avg_long_tput_gbps, c.drops()
        );
    }
    println!(
        "\nThe Xpander uses ~2/3 of the fat-tree's switches ({} vs {}).",
        pair.xpander.num_nodes(),
        pair.fat_tree.num_nodes()
    );
}
