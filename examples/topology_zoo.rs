//! Topology zoo: builds every static network the paper evaluates and
//! prints their structural properties side by side — switch/server
//! counts, diameter, average path length, and (for the expanders) the
//! spectral gap against the Ramanujan bound.
//!
//! Run with: `cargo run --release --example topology_zoo`

use beyond_fattrees::prelude::*;
use beyond_fattrees::topology::metrics::path_stats;
use beyond_fattrees::topology::xpander::second_eigenvalue;

fn main() {
    let nets: Vec<(&str, Topology, Option<u32>)> = vec![
        ("fat-tree k=8", FatTree::full(8).build(), None),
        (
            "fat-tree k=8 @77% cost",
            FatTree::at_cost_fraction(8, 0.78).build(),
            None,
        ),
        (
            "xpander d=5 (54 sw)",
            Xpander::for_switches(5, 54, 3, 1).build(),
            Some(5),
        ),
        (
            "jellyfish d=5 (54 sw)",
            Jellyfish::new(54, 5, 3, 1).build(),
            Some(5),
        ),
        ("slimfly q=5", SlimFly::new(5, 4).build(), Some(7)),
        (
            "longhop folded 5-cube",
            Longhop::folded_hypercube(5, 4).build(),
            Some(6),
        ),
    ];

    println!(
        "{:<24} {:>8} {:>8} {:>9} {:>10} {:>8} {:>10}",
        "topology", "switches", "servers", "diameter", "avg path", "λ2", "2√(d−1)"
    );
    for (name, t, degree) in &nets {
        let ps = path_stats(t);
        let (lam2, bound) = match degree {
            Some(d) => (
                format!("{:.3}", second_eigenvalue(t)),
                format!("{:.3}", 2.0 * ((*d as f64) - 1.0).sqrt()),
            ),
            None => ("-".into(), "-".into()),
        };
        println!(
            "{:<24} {:>8} {:>8} {:>9} {:>10.3} {:>8} {:>10}",
            name,
            t.num_nodes(),
            t.num_servers(),
            ps.diameter,
            ps.avg_path_length,
            lam2,
            bound
        );
    }

    println!("\nExpanders reach every switch in ~2-3 hops with a fraction of the");
    println!("fat-tree's equipment — the structural root of the paper's result.");
}
