/root/repo/target/release/libdcn_rng.rlib: /root/repo/crates/rng/src/lib.rs
