/root/repo/target/release/examples/failure_resilience-4fd9319f50f26640.d: examples/failure_resilience.rs

/root/repo/target/release/examples/failure_resilience-4fd9319f50f26640: examples/failure_resilience.rs

examples/failure_resilience.rs:
