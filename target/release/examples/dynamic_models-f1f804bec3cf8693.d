/root/repo/target/release/examples/dynamic_models-f1f804bec3cf8693.d: examples/dynamic_models.rs

/root/repo/target/release/examples/dynamic_models-f1f804bec3cf8693: examples/dynamic_models.rs

examples/dynamic_models.rs:
