/root/repo/target/release/examples/skewed_traffic-efbe69f5bf64faa4.d: examples/skewed_traffic.rs

/root/repo/target/release/examples/skewed_traffic-efbe69f5bf64faa4: examples/skewed_traffic.rs

examples/skewed_traffic.rs:
