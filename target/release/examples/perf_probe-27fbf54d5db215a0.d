/root/repo/target/release/examples/perf_probe-27fbf54d5db215a0.d: crates/sim/examples/perf_probe.rs

/root/repo/target/release/examples/perf_probe-27fbf54d5db215a0: crates/sim/examples/perf_probe.rs

crates/sim/examples/perf_probe.rs:
