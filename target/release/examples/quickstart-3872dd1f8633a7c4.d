/root/repo/target/release/examples/quickstart-3872dd1f8633a7c4.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3872dd1f8633a7c4: examples/quickstart.rs

examples/quickstart.rs:
