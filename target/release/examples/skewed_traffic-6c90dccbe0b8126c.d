/root/repo/target/release/examples/skewed_traffic-6c90dccbe0b8126c.d: examples/skewed_traffic.rs

/root/repo/target/release/examples/skewed_traffic-6c90dccbe0b8126c: examples/skewed_traffic.rs

examples/skewed_traffic.rs:
