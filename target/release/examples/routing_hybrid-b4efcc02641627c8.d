/root/repo/target/release/examples/routing_hybrid-b4efcc02641627c8.d: examples/routing_hybrid.rs

/root/repo/target/release/examples/routing_hybrid-b4efcc02641627c8: examples/routing_hybrid.rs

examples/routing_hybrid.rs:
