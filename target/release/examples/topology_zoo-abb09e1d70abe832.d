/root/repo/target/release/examples/topology_zoo-abb09e1d70abe832.d: examples/topology_zoo.rs

/root/repo/target/release/examples/topology_zoo-abb09e1d70abe832: examples/topology_zoo.rs

examples/topology_zoo.rs:
