/root/repo/target/release/examples/quickstart-aaa5fa31b2d2108c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-aaa5fa31b2d2108c: examples/quickstart.rs

examples/quickstart.rs:
