/root/repo/target/release/examples/failure_resilience-32a8580441be7fec.d: examples/failure_resilience.rs

/root/repo/target/release/examples/failure_resilience-32a8580441be7fec: examples/failure_resilience.rs

examples/failure_resilience.rs:
