/root/repo/target/release/examples/topology_zoo-d6f72c34fefce98a.d: examples/topology_zoo.rs

/root/repo/target/release/examples/topology_zoo-d6f72c34fefce98a: examples/topology_zoo.rs

examples/topology_zoo.rs:
