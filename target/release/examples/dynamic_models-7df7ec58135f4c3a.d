/root/repo/target/release/examples/dynamic_models-7df7ec58135f4c3a.d: examples/dynamic_models.rs

/root/repo/target/release/examples/dynamic_models-7df7ec58135f4c3a: examples/dynamic_models.rs

examples/dynamic_models.rs:
