/root/repo/target/release/examples/perf_probe-f2f150d7c615879f.d: crates/sim/examples/perf_probe.rs

/root/repo/target/release/examples/perf_probe-f2f150d7c615879f: crates/sim/examples/perf_probe.rs

crates/sim/examples/perf_probe.rs:
