/root/repo/target/release/examples/routing_hybrid-b0fca314cedd67ae.d: examples/routing_hybrid.rs

/root/repo/target/release/examples/routing_hybrid-b0fca314cedd67ae: examples/routing_hybrid.rs

examples/routing_hybrid.rs:
