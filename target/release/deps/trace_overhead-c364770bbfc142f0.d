/root/repo/target/release/deps/trace_overhead-c364770bbfc142f0.d: crates/bench/src/bin/trace_overhead.rs

/root/repo/target/release/deps/trace_overhead-c364770bbfc142f0: crates/bench/src/bin/trace_overhead.rs

crates/bench/src/bin/trace_overhead.rs:
