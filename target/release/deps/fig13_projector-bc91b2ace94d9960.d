/root/repo/target/release/deps/fig13_projector-bc91b2ace94d9960.d: crates/bench/src/bin/fig13_projector.rs

/root/repo/target/release/deps/fig13_projector-bc91b2ace94d9960: crates/bench/src/bin/fig13_projector.rs

crates/bench/src/bin/fig13_projector.rs:
