/root/repo/target/release/deps/fig5a_slimfly-3ef3b33162078df7.d: crates/bench/src/bin/fig5a_slimfly.rs

/root/repo/target/release/deps/fig5a_slimfly-3ef3b33162078df7: crates/bench/src/bin/fig5a_slimfly.rs

crates/bench/src/bin/fig5a_slimfly.rs:
