/root/repo/target/release/deps/fig6b_jellyfish_scaling-e05dc0a85e4534b5.d: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

/root/repo/target/release/deps/fig6b_jellyfish_scaling-e05dc0a85e4534b5: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

crates/bench/src/bin/fig6b_jellyfish_scaling.rs:
