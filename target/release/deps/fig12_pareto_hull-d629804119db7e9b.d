/root/repo/target/release/deps/fig12_pareto_hull-d629804119db7e9b.d: crates/bench/src/bin/fig12_pareto_hull.rs

/root/repo/target/release/deps/fig12_pareto_hull-d629804119db7e9b: crates/bench/src/bin/fig12_pareto_hull.rs

crates/bench/src/bin/fig12_pareto_hull.rs:
