/root/repo/target/release/deps/conjecture24_search-0e19307c9cf77462.d: crates/bench/src/bin/conjecture24_search.rs

/root/repo/target/release/deps/conjecture24_search-0e19307c9cf77462: crates/bench/src/bin/conjecture24_search.rs

crates/bench/src/bin/conjecture24_search.rs:
