/root/repo/target/release/deps/fig6b_jellyfish_scaling-6e54207f5ad18a28.d: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

/root/repo/target/release/deps/fig6b_jellyfish_scaling-6e54207f5ad18a28: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

crates/bench/src/bin/fig6b_jellyfish_scaling.rs:
