/root/repo/target/release/deps/ablate_q-eb162d479ea5e6ed.d: crates/bench/src/bin/ablate_q.rs

/root/repo/target/release/deps/ablate_q-eb162d479ea5e6ed: crates/bench/src/bin/ablate_q.rs

crates/bench/src/bin/ablate_q.rs:
