/root/repo/target/release/deps/dcnsim-c4b19ae25e582218.d: src/bin/dcnsim.rs

/root/repo/target/release/deps/dcnsim-c4b19ae25e582218: src/bin/dcnsim.rs

src/bin/dcnsim.rs:
