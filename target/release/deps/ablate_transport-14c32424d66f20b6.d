/root/repo/target/release/deps/ablate_transport-14c32424d66f20b6.d: crates/bench/src/bin/ablate_transport.rs

/root/repo/target/release/deps/ablate_transport-14c32424d66f20b6: crates/bench/src/bin/ablate_transport.rs

crates/bench/src/bin/ablate_transport.rs:
