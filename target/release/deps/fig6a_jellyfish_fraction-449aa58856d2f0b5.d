/root/repo/target/release/deps/fig6a_jellyfish_fraction-449aa58856d2f0b5.d: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

/root/repo/target/release/deps/fig6a_jellyfish_fraction-449aa58856d2f0b5: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

crates/bench/src/bin/fig6a_jellyfish_fraction.rs:
