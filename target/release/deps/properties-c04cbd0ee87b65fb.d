/root/repo/target/release/deps/properties-c04cbd0ee87b65fb.d: crates/workloads/tests/properties.rs

/root/repo/target/release/deps/properties-c04cbd0ee87b65fb: crates/workloads/tests/properties.rs

crates/workloads/tests/properties.rs:
