/root/repo/target/release/deps/dcn_sim-c4e9964d0f580718.d: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/trace.rs crates/sim/src/types.rs

/root/repo/target/release/deps/libdcn_sim-c4e9964d0f580718.rlib: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/trace.rs crates/sim/src/types.rs

/root/repo/target/release/deps/libdcn_sim-c4e9964d0f580718.rmeta: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/trace.rs crates/sim/src/types.rs

crates/sim/src/lib.rs:
crates/sim/src/channel.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/host.rs:
crates/sim/src/net.rs:
crates/sim/src/stats.rs:
crates/sim/src/switch.rs:
crates/sim/src/trace.rs:
crates/sim/src/types.rs:
