/root/repo/target/release/deps/ablate_flowlet-f1dcd14def183cfb.d: crates/bench/src/bin/ablate_flowlet.rs

/root/repo/target/release/deps/ablate_flowlet-f1dcd14def183cfb: crates/bench/src/bin/ablate_flowlet.rs

crates/bench/src/bin/ablate_flowlet.rs:
