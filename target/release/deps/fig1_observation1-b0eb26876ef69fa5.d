/root/repo/target/release/deps/fig1_observation1-b0eb26876ef69fa5.d: crates/bench/src/bin/fig1_observation1.rs

/root/repo/target/release/deps/fig1_observation1-b0eb26876ef69fa5: crates/bench/src/bin/fig1_observation1.rs

crates/bench/src/bin/fig1_observation1.rs:
