/root/repo/target/release/deps/fig15_large_scale-adfa1ae1c4b930f0.d: crates/bench/src/bin/fig15_large_scale.rs

/root/repo/target/release/deps/fig15_large_scale-adfa1ae1c4b930f0: crates/bench/src/bin/fig15_large_scale.rs

crates/bench/src/bin/fig15_large_scale.rs:
