/root/repo/target/release/deps/property_invariants-33f77f7f391a83a9.d: tests/property_invariants.rs

/root/repo/target/release/deps/property_invariants-33f77f7f391a83a9: tests/property_invariants.rs

tests/property_invariants.rs:
