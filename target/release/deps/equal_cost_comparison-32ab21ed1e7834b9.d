/root/repo/target/release/deps/equal_cost_comparison-32ab21ed1e7834b9.d: tests/equal_cost_comparison.rs

/root/repo/target/release/deps/equal_cost_comparison-32ab21ed1e7834b9: tests/equal_cost_comparison.rs

tests/equal_cost_comparison.rs:
