/root/repo/target/release/deps/dcn_workloads-e9fa5cc01d9bd9c1.d: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

/root/repo/target/release/deps/libdcn_workloads-e9fa5cc01d9bd9c1.rlib: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

/root/repo/target/release/deps/libdcn_workloads-e9fa5cc01d9bd9c1.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/fluid.rs:
crates/workloads/src/fsize.rs:
crates/workloads/src/tm.rs:
