/root/repo/target/release/deps/ablate_adaptive-f5038a764528cc04.d: crates/bench/src/bin/ablate_adaptive.rs

/root/repo/target/release/deps/ablate_adaptive-f5038a764528cc04: crates/bench/src/bin/ablate_adaptive.rs

crates/bench/src/bin/ablate_adaptive.rs:
