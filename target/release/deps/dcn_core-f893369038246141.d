/root/repo/target/release/deps/dcn_core-f893369038246141.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

/root/repo/target/release/deps/libdcn_core-f893369038246141.rlib: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

/root/repo/target/release/deps/libdcn_core-f893369038246141.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/dynamicnet.rs:
crates/core/src/experiment.rs:
crates/core/src/flex.rs:
crates/core/src/theory.rs:
