/root/repo/target/release/deps/properties-f13f1e548b04e6f4.d: crates/maxflow/tests/properties.rs

/root/repo/target/release/deps/properties-f13f1e548b04e6f4: crates/maxflow/tests/properties.rs

crates/maxflow/tests/properties.rs:
