/root/repo/target/release/deps/dcn_rng-8bb0437f8b3c8e1e.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libdcn_rng-8bb0437f8b3c8e1e.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libdcn_rng-8bb0437f8b3c8e1e.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
