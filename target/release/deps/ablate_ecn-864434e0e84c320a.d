/root/repo/target/release/deps/ablate_ecn-864434e0e84c320a.d: crates/bench/src/bin/ablate_ecn.rs

/root/repo/target/release/deps/ablate_ecn-864434e0e84c320a: crates/bench/src/bin/ablate_ecn.rs

crates/bench/src/bin/ablate_ecn.rs:
