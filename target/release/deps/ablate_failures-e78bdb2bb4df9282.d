/root/repo/target/release/deps/ablate_failures-e78bdb2bb4df9282.d: crates/bench/src/bin/ablate_failures.rs

/root/repo/target/release/deps/ablate_failures-e78bdb2bb4df9282: crates/bench/src/bin/ablate_failures.rs

crates/bench/src/bin/ablate_failures.rs:
