/root/repo/target/release/deps/gk_probe-380beec93a188ec0.d: crates/bench/src/bin/gk_probe.rs

/root/repo/target/release/deps/gk_probe-380beec93a188ec0: crates/bench/src/bin/gk_probe.rs

crates/bench/src/bin/gk_probe.rs:
