/root/repo/target/release/deps/fig13_projector-71f9e2828b60384f.d: crates/bench/src/bin/fig13_projector.rs

/root/repo/target/release/deps/fig13_projector-71f9e2828b60384f: crates/bench/src/bin/fig13_projector.rs

crates/bench/src/bin/fig13_projector.rs:
