/root/repo/target/release/deps/dcn_routing-7bec13df4dd7b06f.d: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

/root/repo/target/release/deps/libdcn_routing-7bec13df4dd7b06f.rlib: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

/root/repo/target/release/deps/libdcn_routing-7bec13df4dd7b06f.rmeta: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

crates/routing/src/lib.rs:
crates/routing/src/ecmp.rs:
crates/routing/src/hyb.rs:
crates/routing/src/ksp.rs:
crates/routing/src/kspsel.rs:
crates/routing/src/vlb.rs:
