/root/repo/target/release/deps/ablate_congestion_aware-a5c88cf4d24d9d9b.d: crates/bench/src/bin/ablate_congestion_aware.rs

/root/repo/target/release/deps/ablate_congestion_aware-a5c88cf4d24d9d9b: crates/bench/src/bin/ablate_congestion_aware.rs

crates/bench/src/bin/ablate_congestion_aware.rs:
