/root/repo/target/release/deps/gk_probe-239b41431dfc5562.d: crates/bench/src/bin/gk_probe.rs

/root/repo/target/release/deps/gk_probe-239b41431dfc5562: crates/bench/src/bin/gk_probe.rs

crates/bench/src/bin/gk_probe.rs:
