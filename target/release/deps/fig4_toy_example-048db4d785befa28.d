/root/repo/target/release/deps/fig4_toy_example-048db4d785befa28.d: crates/bench/src/bin/fig4_toy_example.rs

/root/repo/target/release/deps/fig4_toy_example-048db4d785befa28: crates/bench/src/bin/fig4_toy_example.rs

crates/bench/src/bin/fig4_toy_example.rs:
