/root/repo/target/release/deps/ablate_flowlet-532098c48c8791f7.d: crates/bench/src/bin/ablate_flowlet.rs

/root/repo/target/release/deps/ablate_flowlet-532098c48c8791f7: crates/bench/src/bin/ablate_flowlet.rs

crates/bench/src/bin/ablate_flowlet.rs:
