/root/repo/target/release/deps/dcn_maxflow-b2014bd615fd773f.d: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs

/root/repo/target/release/deps/libdcn_maxflow-b2014bd615fd773f.rlib: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs

/root/repo/target/release/deps/libdcn_maxflow-b2014bd615fd773f.rmeta: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs

crates/maxflow/src/lib.rs:
crates/maxflow/src/bound.rs:
crates/maxflow/src/concurrent.rs:
crates/maxflow/src/dinic.rs:
crates/maxflow/src/lp.rs:
crates/maxflow/src/network.rs:
