/root/repo/target/release/deps/beyond_fattrees-22ec73bf386ec9be.d: src/lib.rs

/root/repo/target/release/deps/beyond_fattrees-22ec73bf386ec9be: src/lib.rs

src/lib.rs:
