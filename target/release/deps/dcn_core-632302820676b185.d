/root/repo/target/release/deps/dcn_core-632302820676b185.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

/root/repo/target/release/deps/dcn_core-632302820676b185: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/dynamicnet.rs:
crates/core/src/experiment.rs:
crates/core/src/flex.rs:
crates/core/src/theory.rs:
