/root/repo/target/release/deps/fig7c_all_to_all-e8d49c9520290c62.d: crates/bench/src/bin/fig7c_all_to_all.rs

/root/repo/target/release/deps/fig7c_all_to_all-e8d49c9520290c62: crates/bench/src/bin/fig7c_all_to_all.rs

crates/bench/src/bin/fig7c_all_to_all.rs:
