/root/repo/target/release/deps/fig3_xpander_floorplan-c97069790d15ae68.d: crates/bench/src/bin/fig3_xpander_floorplan.rs

/root/repo/target/release/deps/fig3_xpander_floorplan-c97069790d15ae68: crates/bench/src/bin/fig3_xpander_floorplan.rs

crates/bench/src/bin/fig3_xpander_floorplan.rs:
