/root/repo/target/release/deps/run_all-68c988ca4db4e33b.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-68c988ca4db4e33b: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
