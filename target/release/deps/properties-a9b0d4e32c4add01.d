/root/repo/target/release/deps/properties-a9b0d4e32c4add01.d: crates/topology/tests/properties.rs

/root/repo/target/release/deps/properties-a9b0d4e32c4add01: crates/topology/tests/properties.rs

crates/topology/tests/properties.rs:
