/root/repo/target/release/deps/fig5b_longhop-9dad7e1c1ecc8a48.d: crates/bench/src/bin/fig5b_longhop.rs

/root/repo/target/release/deps/fig5b_longhop-9dad7e1c1ecc8a48: crates/bench/src/bin/fig5b_longhop.rs

crates/bench/src/bin/fig5b_longhop.rs:
