/root/repo/target/release/deps/fig9_a2a_sweep-d6acf739a21b42cf.d: crates/bench/src/bin/fig9_a2a_sweep.rs

/root/repo/target/release/deps/fig9_a2a_sweep-d6acf739a21b42cf: crates/bench/src/bin/fig9_a2a_sweep.rs

crates/bench/src/bin/fig9_a2a_sweep.rs:
