/root/repo/target/release/deps/fig15_large_scale-468cb30f8dc0e876.d: crates/bench/src/bin/fig15_large_scale.rs

/root/repo/target/release/deps/fig15_large_scale-468cb30f8dc0e876: crates/bench/src/bin/fig15_large_scale.rs

crates/bench/src/bin/fig15_large_scale.rs:
