/root/repo/target/release/deps/dcn_rng-cfb20db3849861a5.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/dcn_rng-cfb20db3849861a5: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
