/root/repo/target/release/deps/fig7b_neighbor_racks-f41266dc37bfcbf6.d: crates/bench/src/bin/fig7b_neighbor_racks.rs

/root/repo/target/release/deps/fig7b_neighbor_racks-f41266dc37bfcbf6: crates/bench/src/bin/fig7b_neighbor_racks.rs

crates/bench/src/bin/fig7b_neighbor_racks.rs:
