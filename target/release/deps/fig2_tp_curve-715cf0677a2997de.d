/root/repo/target/release/deps/fig2_tp_curve-715cf0677a2997de.d: crates/bench/src/bin/fig2_tp_curve.rs

/root/repo/target/release/deps/fig2_tp_curve-715cf0677a2997de: crates/bench/src/bin/fig2_tp_curve.rs

crates/bench/src/bin/fig2_tp_curve.rs:
