/root/repo/target/release/deps/dcnsim-fbfb7fedb0d75c14.d: src/bin/dcnsim.rs

/root/repo/target/release/deps/dcnsim-fbfb7fedb0d75c14: src/bin/dcnsim.rs

src/bin/dcnsim.rs:
