/root/repo/target/release/deps/dcn_maxflow-bfc8be4867bcd283.d: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs

/root/repo/target/release/deps/dcn_maxflow-bfc8be4867bcd283: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs

crates/maxflow/src/lib.rs:
crates/maxflow/src/bound.rs:
crates/maxflow/src/concurrent.rs:
crates/maxflow/src/dinic.rs:
crates/maxflow/src/lp.rs:
crates/maxflow/src/network.rs:
