/root/repo/target/release/deps/fig14_skew-08a6e9f3f463ad4a.d: crates/bench/src/bin/fig14_skew.rs

/root/repo/target/release/deps/fig14_skew-08a6e9f3f463ad4a: crates/bench/src/bin/fig14_skew.rs

crates/bench/src/bin/fig14_skew.rs:
