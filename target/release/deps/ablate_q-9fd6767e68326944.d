/root/repo/target/release/deps/ablate_q-9fd6767e68326944.d: crates/bench/src/bin/ablate_q.rs

/root/repo/target/release/deps/ablate_q-9fd6767e68326944: crates/bench/src/bin/ablate_q.rs

crates/bench/src/bin/ablate_q.rs:
