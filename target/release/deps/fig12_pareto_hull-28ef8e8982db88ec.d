/root/repo/target/release/deps/fig12_pareto_hull-28ef8e8982db88ec.d: crates/bench/src/bin/fig12_pareto_hull.rs

/root/repo/target/release/deps/fig12_pareto_hull-28ef8e8982db88ec: crates/bench/src/bin/fig12_pareto_hull.rs

crates/bench/src/bin/fig12_pareto_hull.rs:
