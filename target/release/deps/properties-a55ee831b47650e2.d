/root/repo/target/release/deps/properties-a55ee831b47650e2.d: crates/flowsim/tests/properties.rs

/root/repo/target/release/deps/properties-a55ee831b47650e2: crates/flowsim/tests/properties.rs

crates/flowsim/tests/properties.rs:
