/root/repo/target/release/deps/dcn_flowsim-d7113d4f7eee23d3.d: crates/flowsim/src/lib.rs

/root/repo/target/release/deps/libdcn_flowsim-d7113d4f7eee23d3.rlib: crates/flowsim/src/lib.rs

/root/repo/target/release/deps/libdcn_flowsim-d7113d4f7eee23d3.rmeta: crates/flowsim/src/lib.rs

crates/flowsim/src/lib.rs:
