/root/repo/target/release/deps/fig10_permute_sweep-43bd7eaaf655db9d.d: crates/bench/src/bin/fig10_permute_sweep.rs

/root/repo/target/release/deps/fig10_permute_sweep-43bd7eaaf655db9d: crates/bench/src/bin/fig10_permute_sweep.rs

crates/bench/src/bin/fig10_permute_sweep.rs:
