/root/repo/target/release/deps/trace_regression-00d9ce03cf52466d.d: tests/trace_regression.rs

/root/repo/target/release/deps/trace_regression-00d9ce03cf52466d: tests/trace_regression.rs

tests/trace_regression.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
