/root/repo/target/release/deps/dcn_flowsim-d23ff5c96323038f.d: crates/flowsim/src/lib.rs

/root/repo/target/release/deps/dcn_flowsim-d23ff5c96323038f: crates/flowsim/src/lib.rs

crates/flowsim/src/lib.rs:
