/root/repo/target/release/deps/ablate_adaptive-f77398b3674ffd33.d: crates/bench/src/bin/ablate_adaptive.rs

/root/repo/target/release/deps/ablate_adaptive-f77398b3674ffd33: crates/bench/src/bin/ablate_adaptive.rs

crates/bench/src/bin/ablate_adaptive.rs:
