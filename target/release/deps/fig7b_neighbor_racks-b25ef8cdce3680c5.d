/root/repo/target/release/deps/fig7b_neighbor_racks-b25ef8cdce3680c5.d: crates/bench/src/bin/fig7b_neighbor_racks.rs

/root/repo/target/release/deps/fig7b_neighbor_racks-b25ef8cdce3680c5: crates/bench/src/bin/fig7b_neighbor_racks.rs

crates/bench/src/bin/fig7b_neighbor_racks.rs:
