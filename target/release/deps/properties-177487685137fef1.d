/root/repo/target/release/deps/properties-177487685137fef1.d: crates/routing/tests/properties.rs

/root/repo/target/release/deps/properties-177487685137fef1: crates/routing/tests/properties.rs

crates/routing/tests/properties.rs:
