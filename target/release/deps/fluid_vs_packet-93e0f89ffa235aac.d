/root/repo/target/release/deps/fluid_vs_packet-93e0f89ffa235aac.d: tests/fluid_vs_packet.rs

/root/repo/target/release/deps/fluid_vs_packet-93e0f89ffa235aac: tests/fluid_vs_packet.rs

tests/fluid_vs_packet.rs:
