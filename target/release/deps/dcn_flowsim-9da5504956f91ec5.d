/root/repo/target/release/deps/dcn_flowsim-9da5504956f91ec5.d: crates/flowsim/src/lib.rs

/root/repo/target/release/deps/libdcn_flowsim-9da5504956f91ec5.rlib: crates/flowsim/src/lib.rs

/root/repo/target/release/deps/libdcn_flowsim-9da5504956f91ec5.rmeta: crates/flowsim/src/lib.rs

crates/flowsim/src/lib.rs:
