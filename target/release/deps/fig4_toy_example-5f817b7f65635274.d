/root/repo/target/release/deps/fig4_toy_example-5f817b7f65635274.d: crates/bench/src/bin/fig4_toy_example.rs

/root/repo/target/release/deps/fig4_toy_example-5f817b7f65635274: crates/bench/src/bin/fig4_toy_example.rs

crates/bench/src/bin/fig4_toy_example.rs:
