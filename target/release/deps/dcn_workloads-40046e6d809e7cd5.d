/root/repo/target/release/deps/dcn_workloads-40046e6d809e7cd5.d: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

/root/repo/target/release/deps/dcn_workloads-40046e6d809e7cd5: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/fluid.rs:
crates/workloads/src/fsize.rs:
crates/workloads/src/tm.rs:
