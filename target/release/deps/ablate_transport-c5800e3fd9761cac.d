/root/repo/target/release/deps/ablate_transport-c5800e3fd9761cac.d: crates/bench/src/bin/ablate_transport.rs

/root/repo/target/release/deps/ablate_transport-c5800e3fd9761cac: crates/bench/src/bin/ablate_transport.rs

crates/bench/src/bin/ablate_transport.rs:
