/root/repo/target/release/deps/fig11_permute_load-fb320a5139029fa4.d: crates/bench/src/bin/fig11_permute_load.rs

/root/repo/target/release/deps/fig11_permute_load-fb320a5139029fa4: crates/bench/src/bin/fig11_permute_load.rs

crates/bench/src/bin/fig11_permute_load.rs:
