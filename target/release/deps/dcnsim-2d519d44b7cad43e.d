/root/repo/target/release/deps/dcnsim-2d519d44b7cad43e.d: src/bin/dcnsim.rs

/root/repo/target/release/deps/dcnsim-2d519d44b7cad43e: src/bin/dcnsim.rs

src/bin/dcnsim.rs:
