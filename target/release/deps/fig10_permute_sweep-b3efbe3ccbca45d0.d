/root/repo/target/release/deps/fig10_permute_sweep-b3efbe3ccbca45d0.d: crates/bench/src/bin/fig10_permute_sweep.rs

/root/repo/target/release/deps/fig10_permute_sweep-b3efbe3ccbca45d0: crates/bench/src/bin/fig10_permute_sweep.rs

crates/bench/src/bin/fig10_permute_sweep.rs:
