/root/repo/target/release/deps/run_all-0b50d8fe6dd67178.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-0b50d8fe6dd67178: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
