/root/repo/target/release/deps/dcn_bench-3255670e6c8a4538.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/dcn_bench-3255670e6c8a4538: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
