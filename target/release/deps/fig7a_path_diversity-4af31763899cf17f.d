/root/repo/target/release/deps/fig7a_path_diversity-4af31763899cf17f.d: crates/bench/src/bin/fig7a_path_diversity.rs

/root/repo/target/release/deps/fig7a_path_diversity-4af31763899cf17f: crates/bench/src/bin/fig7a_path_diversity.rs

crates/bench/src/bin/fig7a_path_diversity.rs:
