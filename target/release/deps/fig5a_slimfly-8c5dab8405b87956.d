/root/repo/target/release/deps/fig5a_slimfly-8c5dab8405b87956.d: crates/bench/src/bin/fig5a_slimfly.rs

/root/repo/target/release/deps/fig5a_slimfly-8c5dab8405b87956: crates/bench/src/bin/fig5a_slimfly.rs

crates/bench/src/bin/fig5a_slimfly.rs:
