/root/repo/target/release/deps/fig1_observation1-cfbdf35951a4e0d5.d: crates/bench/src/bin/fig1_observation1.rs

/root/repo/target/release/deps/fig1_observation1-cfbdf35951a4e0d5: crates/bench/src/bin/fig1_observation1.rs

crates/bench/src/bin/fig1_observation1.rs:
