/root/repo/target/release/deps/dcn_sim-07ec12161cbad64f.d: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/types.rs

/root/repo/target/release/deps/libdcn_sim-07ec12161cbad64f.rlib: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/types.rs

/root/repo/target/release/deps/libdcn_sim-07ec12161cbad64f.rmeta: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/types.rs

crates/sim/src/lib.rs:
crates/sim/src/channel.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/host.rs:
crates/sim/src/net.rs:
crates/sim/src/stats.rs:
crates/sim/src/switch.rs:
crates/sim/src/types.rs:
