/root/repo/target/release/deps/beyond_fattrees-d3c0bbe66d494921.d: src/lib.rs

/root/repo/target/release/deps/libbeyond_fattrees-d3c0bbe66d494921.rlib: src/lib.rs

/root/repo/target/release/deps/libbeyond_fattrees-d3c0bbe66d494921.rmeta: src/lib.rs

src/lib.rs:
