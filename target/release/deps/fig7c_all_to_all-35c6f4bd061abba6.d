/root/repo/target/release/deps/fig7c_all_to_all-35c6f4bd061abba6.d: crates/bench/src/bin/fig7c_all_to_all.rs

/root/repo/target/release/deps/fig7c_all_to_all-35c6f4bd061abba6: crates/bench/src/bin/fig7c_all_to_all.rs

crates/bench/src/bin/fig7c_all_to_all.rs:
