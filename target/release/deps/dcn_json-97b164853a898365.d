/root/repo/target/release/deps/dcn_json-97b164853a898365.d: crates/json/src/lib.rs

/root/repo/target/release/deps/libdcn_json-97b164853a898365.rlib: crates/json/src/lib.rs

/root/repo/target/release/deps/libdcn_json-97b164853a898365.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
