/root/repo/target/release/deps/fig8_flow_size_cdfs-f1d58d6f3328fd15.d: crates/bench/src/bin/fig8_flow_size_cdfs.rs

/root/repo/target/release/deps/fig8_flow_size_cdfs-f1d58d6f3328fd15: crates/bench/src/bin/fig8_flow_size_cdfs.rs

crates/bench/src/bin/fig8_flow_size_cdfs.rs:
