/root/repo/target/release/deps/dcn_json-1376294282a6c89f.d: crates/json/src/lib.rs

/root/repo/target/release/deps/dcn_json-1376294282a6c89f: crates/json/src/lib.rs

crates/json/src/lib.rs:
