/root/repo/target/release/deps/dcn_sim-7cce8224d589428c.d: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/types.rs

/root/repo/target/release/deps/dcn_sim-7cce8224d589428c: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/types.rs

crates/sim/src/lib.rs:
crates/sim/src/channel.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/host.rs:
crates/sim/src/net.rs:
crates/sim/src/stats.rs:
crates/sim/src/switch.rs:
crates/sim/src/types.rs:
