/root/repo/target/release/deps/fig14_skew-ae8a1d74dd8049a8.d: crates/bench/src/bin/fig14_skew.rs

/root/repo/target/release/deps/fig14_skew-ae8a1d74dd8049a8: crates/bench/src/bin/fig14_skew.rs

crates/bench/src/bin/fig14_skew.rs:
