/root/repo/target/release/deps/fig7a_path_diversity-62211c589743682a.d: crates/bench/src/bin/fig7a_path_diversity.rs

/root/repo/target/release/deps/fig7a_path_diversity-62211c589743682a: crates/bench/src/bin/fig7a_path_diversity.rs

crates/bench/src/bin/fig7a_path_diversity.rs:
