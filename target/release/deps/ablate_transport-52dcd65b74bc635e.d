/root/repo/target/release/deps/ablate_transport-52dcd65b74bc635e.d: crates/bench/src/bin/ablate_transport.rs

/root/repo/target/release/deps/ablate_transport-52dcd65b74bc635e: crates/bench/src/bin/ablate_transport.rs

crates/bench/src/bin/ablate_transport.rs:
