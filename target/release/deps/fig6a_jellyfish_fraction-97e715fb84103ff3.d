/root/repo/target/release/deps/fig6a_jellyfish_fraction-97e715fb84103ff3.d: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

/root/repo/target/release/deps/fig6a_jellyfish_fraction-97e715fb84103ff3: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

crates/bench/src/bin/fig6a_jellyfish_fraction.rs:
