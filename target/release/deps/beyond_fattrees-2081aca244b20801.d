/root/repo/target/release/deps/beyond_fattrees-2081aca244b20801.d: src/lib.rs

/root/repo/target/release/deps/libbeyond_fattrees-2081aca244b20801.rlib: src/lib.rs

/root/repo/target/release/deps/libbeyond_fattrees-2081aca244b20801.rmeta: src/lib.rs

src/lib.rs:
