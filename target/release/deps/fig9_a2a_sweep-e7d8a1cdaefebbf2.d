/root/repo/target/release/deps/fig9_a2a_sweep-e7d8a1cdaefebbf2.d: crates/bench/src/bin/fig9_a2a_sweep.rs

/root/repo/target/release/deps/fig9_a2a_sweep-e7d8a1cdaefebbf2: crates/bench/src/bin/fig9_a2a_sweep.rs

crates/bench/src/bin/fig9_a2a_sweep.rs:
