/root/repo/target/release/deps/dcn_topology-462f520adeb2eccb.d: crates/topology/src/lib.rs crates/topology/src/dragonfly.rs crates/topology/src/export.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/jellyfish.rs crates/topology/src/longhop.rs crates/topology/src/metrics.rs crates/topology/src/slimfly.rs crates/topology/src/toy.rs crates/topology/src/xpander.rs

/root/repo/target/release/deps/dcn_topology-462f520adeb2eccb: crates/topology/src/lib.rs crates/topology/src/dragonfly.rs crates/topology/src/export.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/jellyfish.rs crates/topology/src/longhop.rs crates/topology/src/metrics.rs crates/topology/src/slimfly.rs crates/topology/src/toy.rs crates/topology/src/xpander.rs

crates/topology/src/lib.rs:
crates/topology/src/dragonfly.rs:
crates/topology/src/export.rs:
crates/topology/src/fattree.rs:
crates/topology/src/graph.rs:
crates/topology/src/jellyfish.rs:
crates/topology/src/longhop.rs:
crates/topology/src/metrics.rs:
crates/topology/src/slimfly.rs:
crates/topology/src/toy.rs:
crates/topology/src/xpander.rs:
