/root/repo/target/release/deps/fig8_flow_size_cdfs-60a411fcc5a9d9fc.d: crates/bench/src/bin/fig8_flow_size_cdfs.rs

/root/repo/target/release/deps/fig8_flow_size_cdfs-60a411fcc5a9d9fc: crates/bench/src/bin/fig8_flow_size_cdfs.rs

crates/bench/src/bin/fig8_flow_size_cdfs.rs:
