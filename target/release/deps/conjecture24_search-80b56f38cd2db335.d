/root/repo/target/release/deps/conjecture24_search-80b56f38cd2db335.d: crates/bench/src/bin/conjecture24_search.rs

/root/repo/target/release/deps/conjecture24_search-80b56f38cd2db335: crates/bench/src/bin/conjecture24_search.rs

crates/bench/src/bin/conjecture24_search.rs:
