/root/repo/target/release/deps/properties-f4836e41c2d1505e.d: crates/sim/tests/properties.rs

/root/repo/target/release/deps/properties-f4836e41c2d1505e: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
