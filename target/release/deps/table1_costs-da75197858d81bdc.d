/root/repo/target/release/deps/table1_costs-da75197858d81bdc.d: crates/bench/src/bin/table1_costs.rs

/root/repo/target/release/deps/table1_costs-da75197858d81bdc: crates/bench/src/bin/table1_costs.rs

crates/bench/src/bin/table1_costs.rs:
