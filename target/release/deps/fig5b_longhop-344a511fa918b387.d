/root/repo/target/release/deps/fig5b_longhop-344a511fa918b387.d: crates/bench/src/bin/fig5b_longhop.rs

/root/repo/target/release/deps/fig5b_longhop-344a511fa918b387: crates/bench/src/bin/fig5b_longhop.rs

crates/bench/src/bin/fig5b_longhop.rs:
