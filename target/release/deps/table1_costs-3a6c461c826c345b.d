/root/repo/target/release/deps/table1_costs-3a6c461c826c345b.d: crates/bench/src/bin/table1_costs.rs

/root/repo/target/release/deps/table1_costs-3a6c461c826c345b: crates/bench/src/bin/table1_costs.rs

crates/bench/src/bin/table1_costs.rs:
