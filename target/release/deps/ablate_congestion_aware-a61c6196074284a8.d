/root/repo/target/release/deps/ablate_congestion_aware-a61c6196074284a8.d: crates/bench/src/bin/ablate_congestion_aware.rs

/root/repo/target/release/deps/ablate_congestion_aware-a61c6196074284a8: crates/bench/src/bin/ablate_congestion_aware.rs

crates/bench/src/bin/ablate_congestion_aware.rs:
