/root/repo/target/release/deps/ablate_ecn-2e9665c64a3c0449.d: crates/bench/src/bin/ablate_ecn.rs

/root/repo/target/release/deps/ablate_ecn-2e9665c64a3c0449: crates/bench/src/bin/ablate_ecn.rs

crates/bench/src/bin/ablate_ecn.rs:
