/root/repo/target/release/deps/determinism-890317c7afc28b5b.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-890317c7afc28b5b: tests/determinism.rs

tests/determinism.rs:
