/root/repo/target/release/deps/fig2_tp_curve-b6acd66d624c651c.d: crates/bench/src/bin/fig2_tp_curve.rs

/root/repo/target/release/deps/fig2_tp_curve-b6acd66d624c651c: crates/bench/src/bin/fig2_tp_curve.rs

crates/bench/src/bin/fig2_tp_curve.rs:
