/root/repo/target/release/deps/dcn_bench-fa911b4b19c25bf9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdcn_bench-fa911b4b19c25bf9.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdcn_bench-fa911b4b19c25bf9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
