/root/repo/target/release/deps/dcn_routing-b1adf70e995467a5.d: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

/root/repo/target/release/deps/dcn_routing-b1adf70e995467a5: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

crates/routing/src/lib.rs:
crates/routing/src/ecmp.rs:
crates/routing/src/hyb.rs:
crates/routing/src/ksp.rs:
crates/routing/src/kspsel.rs:
crates/routing/src/vlb.rs:
