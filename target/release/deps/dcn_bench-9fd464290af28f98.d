/root/repo/target/release/deps/dcn_bench-9fd464290af28f98.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdcn_bench-9fd464290af28f98.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdcn_bench-9fd464290af28f98.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
