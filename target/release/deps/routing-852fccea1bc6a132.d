/root/repo/target/release/deps/routing-852fccea1bc6a132.d: crates/bench/benches/routing.rs

/root/repo/target/release/deps/routing-852fccea1bc6a132: crates/bench/benches/routing.rs

crates/bench/benches/routing.rs:
