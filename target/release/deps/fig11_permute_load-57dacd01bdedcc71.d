/root/repo/target/release/deps/fig11_permute_load-57dacd01bdedcc71.d: crates/bench/src/bin/fig11_permute_load.rs

/root/repo/target/release/deps/fig11_permute_load-57dacd01bdedcc71: crates/bench/src/bin/fig11_permute_load.rs

crates/bench/src/bin/fig11_permute_load.rs:
