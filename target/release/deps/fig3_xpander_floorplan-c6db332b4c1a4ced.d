/root/repo/target/release/deps/fig3_xpander_floorplan-c6db332b4c1a4ced.d: crates/bench/src/bin/fig3_xpander_floorplan.rs

/root/repo/target/release/deps/fig3_xpander_floorplan-c6db332b4c1a4ced: crates/bench/src/bin/fig3_xpander_floorplan.rs

crates/bench/src/bin/fig3_xpander_floorplan.rs:
