/root/repo/target/release/deps/ablate_failures-773ecccc8c77e96c.d: crates/bench/src/bin/ablate_failures.rs

/root/repo/target/release/deps/ablate_failures-773ecccc8c77e96c: crates/bench/src/bin/ablate_failures.rs

crates/bench/src/bin/ablate_failures.rs:
