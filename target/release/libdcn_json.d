/root/repo/target/release/libdcn_json.rlib: /root/repo/crates/json/src/lib.rs
