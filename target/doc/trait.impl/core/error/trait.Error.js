(function() {
    const implementors = Object.fromEntries([["dcn_topology",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"struct\" href=\"dcn_topology/graph/struct.DisconnectedError.html\" title=\"struct dcn_topology::graph::DisconnectedError\">DisconnectedError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[323]}