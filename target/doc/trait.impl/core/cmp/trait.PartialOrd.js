(function() {
    const implementors = Object.fromEntries([["dcn_maxflow",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.PartialOrd.html\" title=\"trait core::cmp::PartialOrd\">PartialOrd</a> for <a class=\"struct\" href=\"dcn_maxflow/network/struct.HeapEntry.html\" title=\"struct dcn_maxflow::network::HeapEntry\">HeapEntry</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[311]}