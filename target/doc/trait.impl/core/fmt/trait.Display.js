(function() {
    const implementors = Object.fromEntries([["dcn_json",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/fmt/trait.Display.html\" title=\"trait core::fmt::Display\">Display</a> for <a class=\"enum\" href=\"dcn_json/enum.Json.html\" title=\"enum dcn_json::Json\">Json</a>",0]]],["dcn_topology",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/fmt/trait.Display.html\" title=\"trait core::fmt::Display\">Display</a> for <a class=\"struct\" href=\"dcn_topology/graph/struct.DisconnectedError.html\" title=\"struct dcn_topology::graph::DisconnectedError\">DisconnectedError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[255,326]}