(function() {
    const implementors = Object.fromEntries([["dcn_topology",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"enum\" href=\"dcn_topology/graph/enum.NodeKind.html\" title=\"enum dcn_topology::graph::NodeKind\">NodeKind</a>",0]]],["dcn_workloads",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"struct\" href=\"dcn_workloads/tm/struct.Endpoint.html\" title=\"struct dcn_workloads::tm::Endpoint\">Endpoint</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[285,289]}