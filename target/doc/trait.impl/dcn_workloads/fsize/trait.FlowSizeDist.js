(function() {
    const implementors = Object.fromEntries([["beyond_fattrees",[]],["dcn_workloads",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[22,21]}