(function() {
    const implementors = Object.fromEntries([["beyond_fattrees",[]],["dcn_routing",[]],["dcn_sim",[["impl <a class=\"trait\" href=\"dcn_routing/hyb/trait.PathSelector.html\" title=\"trait dcn_routing::hyb::PathSelector\">PathSelector</a> for <a class=\"struct\" href=\"dcn_sim/fault/struct.RemappedSelector.html\" title=\"struct dcn_sim::fault::RemappedSelector\">RemappedSelector</a>",0]]],["dcn_sim",[["impl PathSelector for <a class=\"struct\" href=\"dcn_sim/fault/struct.RemappedSelector.html\" title=\"struct dcn_sim::fault::RemappedSelector\">RemappedSelector</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[22,19,304,185]}