(function() {
    var type_impls = Object.fromEntries([["dcn_sim",[]]]);
    if (window.register_type_impls) {
        window.register_type_impls(type_impls);
    } else {
        window.pending_type_impls = type_impls;
    }
})()
//{"start":55,"fragment_lengths":[14]}