/root/repo/target/debug/libdcn_json.rlib: /root/repo/crates/json/src/lib.rs
