/root/repo/target/debug/examples/topology_zoo-40e3d4136b24d872.d: examples/topology_zoo.rs Cargo.toml

/root/repo/target/debug/examples/libtopology_zoo-40e3d4136b24d872.rmeta: examples/topology_zoo.rs Cargo.toml

examples/topology_zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
