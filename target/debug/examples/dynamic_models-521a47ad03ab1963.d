/root/repo/target/debug/examples/dynamic_models-521a47ad03ab1963.d: examples/dynamic_models.rs

/root/repo/target/debug/examples/dynamic_models-521a47ad03ab1963: examples/dynamic_models.rs

examples/dynamic_models.rs:
