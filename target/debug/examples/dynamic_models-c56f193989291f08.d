/root/repo/target/debug/examples/dynamic_models-c56f193989291f08.d: examples/dynamic_models.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_models-c56f193989291f08.rmeta: examples/dynamic_models.rs Cargo.toml

examples/dynamic_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
