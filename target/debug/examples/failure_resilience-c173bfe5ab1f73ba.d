/root/repo/target/debug/examples/failure_resilience-c173bfe5ab1f73ba.d: examples/failure_resilience.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_resilience-c173bfe5ab1f73ba.rmeta: examples/failure_resilience.rs Cargo.toml

examples/failure_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
