/root/repo/target/debug/examples/topology_zoo-bd2c23735e477eac.d: examples/topology_zoo.rs Cargo.toml

/root/repo/target/debug/examples/libtopology_zoo-bd2c23735e477eac.rmeta: examples/topology_zoo.rs Cargo.toml

examples/topology_zoo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
