/root/repo/target/debug/examples/topology_zoo-be5541a62fcd0c33.d: examples/topology_zoo.rs

/root/repo/target/debug/examples/topology_zoo-be5541a62fcd0c33: examples/topology_zoo.rs

examples/topology_zoo.rs:
