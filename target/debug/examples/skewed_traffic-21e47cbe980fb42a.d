/root/repo/target/debug/examples/skewed_traffic-21e47cbe980fb42a.d: examples/skewed_traffic.rs

/root/repo/target/debug/examples/skewed_traffic-21e47cbe980fb42a: examples/skewed_traffic.rs

examples/skewed_traffic.rs:
