/root/repo/target/debug/examples/routing_hybrid-6f27ec2ff7167822.d: examples/routing_hybrid.rs Cargo.toml

/root/repo/target/debug/examples/librouting_hybrid-6f27ec2ff7167822.rmeta: examples/routing_hybrid.rs Cargo.toml

examples/routing_hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
