/root/repo/target/debug/examples/quickstart-e083d6f7661d9b28.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e083d6f7661d9b28: examples/quickstart.rs

examples/quickstart.rs:
