/root/repo/target/debug/examples/dynamic_models-8dcba0c224ad1aba.d: examples/dynamic_models.rs

/root/repo/target/debug/examples/dynamic_models-8dcba0c224ad1aba: examples/dynamic_models.rs

examples/dynamic_models.rs:
