/root/repo/target/debug/examples/failure_resilience-83d7bd3b4e628ce9.d: examples/failure_resilience.rs

/root/repo/target/debug/examples/failure_resilience-83d7bd3b4e628ce9: examples/failure_resilience.rs

examples/failure_resilience.rs:
