/root/repo/target/debug/examples/dynamic_models-eb7832a5c9200358.d: examples/dynamic_models.rs Cargo.toml

/root/repo/target/debug/examples/libdynamic_models-eb7832a5c9200358.rmeta: examples/dynamic_models.rs Cargo.toml

examples/dynamic_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
