/root/repo/target/debug/examples/perf_probe-a15218fe43d9ab07.d: crates/sim/examples/perf_probe.rs

/root/repo/target/debug/examples/perf_probe-a15218fe43d9ab07: crates/sim/examples/perf_probe.rs

crates/sim/examples/perf_probe.rs:
