/root/repo/target/debug/examples/routing_hybrid-8794a3ca4faed9cc.d: examples/routing_hybrid.rs Cargo.toml

/root/repo/target/debug/examples/librouting_hybrid-8794a3ca4faed9cc.rmeta: examples/routing_hybrid.rs Cargo.toml

examples/routing_hybrid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
