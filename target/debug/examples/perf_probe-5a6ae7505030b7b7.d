/root/repo/target/debug/examples/perf_probe-5a6ae7505030b7b7.d: crates/sim/examples/perf_probe.rs Cargo.toml

/root/repo/target/debug/examples/libperf_probe-5a6ae7505030b7b7.rmeta: crates/sim/examples/perf_probe.rs Cargo.toml

crates/sim/examples/perf_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
