/root/repo/target/debug/examples/perf_probe-c7e8bbeff4ce13ea.d: crates/sim/examples/perf_probe.rs Cargo.toml

/root/repo/target/debug/examples/libperf_probe-c7e8bbeff4ce13ea.rmeta: crates/sim/examples/perf_probe.rs Cargo.toml

crates/sim/examples/perf_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
