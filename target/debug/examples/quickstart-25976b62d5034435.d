/root/repo/target/debug/examples/quickstart-25976b62d5034435.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-25976b62d5034435: examples/quickstart.rs

examples/quickstart.rs:
