/root/repo/target/debug/examples/routing_hybrid-adf7c54d4a18d030.d: examples/routing_hybrid.rs

/root/repo/target/debug/examples/routing_hybrid-adf7c54d4a18d030: examples/routing_hybrid.rs

examples/routing_hybrid.rs:
