/root/repo/target/debug/examples/skewed_traffic-bc5cde315968e865.d: examples/skewed_traffic.rs

/root/repo/target/debug/examples/skewed_traffic-bc5cde315968e865: examples/skewed_traffic.rs

examples/skewed_traffic.rs:
