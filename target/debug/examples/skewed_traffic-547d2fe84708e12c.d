/root/repo/target/debug/examples/skewed_traffic-547d2fe84708e12c.d: examples/skewed_traffic.rs Cargo.toml

/root/repo/target/debug/examples/libskewed_traffic-547d2fe84708e12c.rmeta: examples/skewed_traffic.rs Cargo.toml

examples/skewed_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
