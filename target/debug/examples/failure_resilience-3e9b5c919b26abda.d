/root/repo/target/debug/examples/failure_resilience-3e9b5c919b26abda.d: examples/failure_resilience.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_resilience-3e9b5c919b26abda.rmeta: examples/failure_resilience.rs Cargo.toml

examples/failure_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
