/root/repo/target/debug/examples/perf_probe-e47db5c4ab4e0c4c.d: crates/sim/examples/perf_probe.rs

/root/repo/target/debug/examples/perf_probe-e47db5c4ab4e0c4c: crates/sim/examples/perf_probe.rs

crates/sim/examples/perf_probe.rs:
