/root/repo/target/debug/examples/topology_zoo-a16763ddee549df9.d: examples/topology_zoo.rs

/root/repo/target/debug/examples/topology_zoo-a16763ddee549df9: examples/topology_zoo.rs

examples/topology_zoo.rs:
