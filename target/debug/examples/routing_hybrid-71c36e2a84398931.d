/root/repo/target/debug/examples/routing_hybrid-71c36e2a84398931.d: examples/routing_hybrid.rs

/root/repo/target/debug/examples/routing_hybrid-71c36e2a84398931: examples/routing_hybrid.rs

examples/routing_hybrid.rs:
