/root/repo/target/debug/examples/skewed_traffic-c47c85c927d73986.d: examples/skewed_traffic.rs Cargo.toml

/root/repo/target/debug/examples/libskewed_traffic-c47c85c927d73986.rmeta: examples/skewed_traffic.rs Cargo.toml

examples/skewed_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
