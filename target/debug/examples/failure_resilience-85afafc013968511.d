/root/repo/target/debug/examples/failure_resilience-85afafc013968511.d: examples/failure_resilience.rs

/root/repo/target/debug/examples/failure_resilience-85afafc013968511: examples/failure_resilience.rs

examples/failure_resilience.rs:
