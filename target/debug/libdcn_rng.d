/root/repo/target/debug/libdcn_rng.rlib: /root/repo/crates/rng/src/lib.rs
