/root/repo/target/debug/deps/fig1_observation1-6f01b830ec91c051.d: crates/bench/src/bin/fig1_observation1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_observation1-6f01b830ec91c051.rmeta: crates/bench/src/bin/fig1_observation1.rs Cargo.toml

crates/bench/src/bin/fig1_observation1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
