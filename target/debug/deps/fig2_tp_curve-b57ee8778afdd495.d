/root/repo/target/debug/deps/fig2_tp_curve-b57ee8778afdd495.d: crates/bench/src/bin/fig2_tp_curve.rs

/root/repo/target/debug/deps/fig2_tp_curve-b57ee8778afdd495: crates/bench/src/bin/fig2_tp_curve.rs

crates/bench/src/bin/fig2_tp_curve.rs:
