/root/repo/target/debug/deps/solvers-e2e6e4f5289b37f9.d: crates/bench/benches/solvers.rs Cargo.toml

/root/repo/target/debug/deps/libsolvers-e2e6e4f5289b37f9.rmeta: crates/bench/benches/solvers.rs Cargo.toml

crates/bench/benches/solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
