/root/repo/target/debug/deps/run_all-8c9e3ed29d824778.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-8c9e3ed29d824778.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
