/root/repo/target/debug/deps/conservation-bea3e66d21fd166d.d: tests/conservation.rs Cargo.toml

/root/repo/target/debug/deps/libconservation-bea3e66d21fd166d.rmeta: tests/conservation.rs Cargo.toml

tests/conservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
