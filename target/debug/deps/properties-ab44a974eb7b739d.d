/root/repo/target/debug/deps/properties-ab44a974eb7b739d.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-ab44a974eb7b739d: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
