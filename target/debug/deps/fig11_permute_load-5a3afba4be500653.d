/root/repo/target/debug/deps/fig11_permute_load-5a3afba4be500653.d: crates/bench/src/bin/fig11_permute_load.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_permute_load-5a3afba4be500653.rmeta: crates/bench/src/bin/fig11_permute_load.rs Cargo.toml

crates/bench/src/bin/fig11_permute_load.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
