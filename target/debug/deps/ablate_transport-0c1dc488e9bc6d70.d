/root/repo/target/debug/deps/ablate_transport-0c1dc488e9bc6d70.d: crates/bench/src/bin/ablate_transport.rs

/root/repo/target/debug/deps/ablate_transport-0c1dc488e9bc6d70: crates/bench/src/bin/ablate_transport.rs

crates/bench/src/bin/ablate_transport.rs:
