/root/repo/target/debug/deps/properties-a31647079d9da80a.d: crates/flowsim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a31647079d9da80a.rmeta: crates/flowsim/tests/properties.rs Cargo.toml

crates/flowsim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
