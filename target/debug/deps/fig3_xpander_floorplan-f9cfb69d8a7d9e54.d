/root/repo/target/debug/deps/fig3_xpander_floorplan-f9cfb69d8a7d9e54.d: crates/bench/src/bin/fig3_xpander_floorplan.rs

/root/repo/target/debug/deps/fig3_xpander_floorplan-f9cfb69d8a7d9e54: crates/bench/src/bin/fig3_xpander_floorplan.rs

crates/bench/src/bin/fig3_xpander_floorplan.rs:
