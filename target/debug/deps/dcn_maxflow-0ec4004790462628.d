/root/repo/target/debug/deps/dcn_maxflow-0ec4004790462628.d: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs

/root/repo/target/debug/deps/dcn_maxflow-0ec4004790462628: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs

crates/maxflow/src/lib.rs:
crates/maxflow/src/bound.rs:
crates/maxflow/src/concurrent.rs:
crates/maxflow/src/dinic.rs:
crates/maxflow/src/lp.rs:
crates/maxflow/src/network.rs:
