/root/repo/target/debug/deps/fig11_permute_load-1f26e198501df20f.d: crates/bench/src/bin/fig11_permute_load.rs

/root/repo/target/debug/deps/fig11_permute_load-1f26e198501df20f: crates/bench/src/bin/fig11_permute_load.rs

crates/bench/src/bin/fig11_permute_load.rs:
