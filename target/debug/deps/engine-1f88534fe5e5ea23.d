/root/repo/target/debug/deps/engine-1f88534fe5e5ea23.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-1f88534fe5e5ea23.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
