/root/repo/target/debug/deps/table1_costs-0b8bec50c23e8acd.d: crates/bench/src/bin/table1_costs.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_costs-0b8bec50c23e8acd.rmeta: crates/bench/src/bin/table1_costs.rs Cargo.toml

crates/bench/src/bin/table1_costs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
