/root/repo/target/debug/deps/ablate_transport-bc76a6fb9e4511f8.d: crates/bench/src/bin/ablate_transport.rs

/root/repo/target/debug/deps/ablate_transport-bc76a6fb9e4511f8: crates/bench/src/bin/ablate_transport.rs

crates/bench/src/bin/ablate_transport.rs:
