/root/repo/target/debug/deps/fig4_toy_example-1dde58d75824ec66.d: crates/bench/src/bin/fig4_toy_example.rs

/root/repo/target/debug/deps/fig4_toy_example-1dde58d75824ec66: crates/bench/src/bin/fig4_toy_example.rs

crates/bench/src/bin/fig4_toy_example.rs:
