/root/repo/target/debug/deps/fig4_toy_example-eb9de04ad331c5a6.d: crates/bench/src/bin/fig4_toy_example.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_toy_example-eb9de04ad331c5a6.rmeta: crates/bench/src/bin/fig4_toy_example.rs Cargo.toml

crates/bench/src/bin/fig4_toy_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
