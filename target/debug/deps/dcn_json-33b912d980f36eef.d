/root/repo/target/debug/deps/dcn_json-33b912d980f36eef.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/libdcn_json-33b912d980f36eef.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
