/root/repo/target/debug/deps/fig6a_jellyfish_fraction-68f72b78a0284e9d.d: crates/bench/src/bin/fig6a_jellyfish_fraction.rs Cargo.toml

/root/repo/target/debug/deps/libfig6a_jellyfish_fraction-68f72b78a0284e9d.rmeta: crates/bench/src/bin/fig6a_jellyfish_fraction.rs Cargo.toml

crates/bench/src/bin/fig6a_jellyfish_fraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
