/root/repo/target/debug/deps/properties-bc3647d02e2cf0da.d: crates/flowsim/tests/properties.rs

/root/repo/target/debug/deps/properties-bc3647d02e2cf0da: crates/flowsim/tests/properties.rs

crates/flowsim/tests/properties.rs:
