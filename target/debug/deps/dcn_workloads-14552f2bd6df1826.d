/root/repo/target/debug/deps/dcn_workloads-14552f2bd6df1826.d: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

/root/repo/target/debug/deps/dcn_workloads-14552f2bd6df1826: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/fluid.rs:
crates/workloads/src/fsize.rs:
crates/workloads/src/tm.rs:
