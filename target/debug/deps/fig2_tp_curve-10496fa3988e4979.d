/root/repo/target/debug/deps/fig2_tp_curve-10496fa3988e4979.d: crates/bench/src/bin/fig2_tp_curve.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_tp_curve-10496fa3988e4979.rmeta: crates/bench/src/bin/fig2_tp_curve.rs Cargo.toml

crates/bench/src/bin/fig2_tp_curve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
