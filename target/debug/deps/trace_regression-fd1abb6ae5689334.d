/root/repo/target/debug/deps/trace_regression-fd1abb6ae5689334.d: tests/trace_regression.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_regression-fd1abb6ae5689334.rmeta: tests/trace_regression.rs Cargo.toml

tests/trace_regression.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
