/root/repo/target/debug/deps/fig8_flow_size_cdfs-68a10a01f4c3a516.d: crates/bench/src/bin/fig8_flow_size_cdfs.rs

/root/repo/target/debug/deps/fig8_flow_size_cdfs-68a10a01f4c3a516: crates/bench/src/bin/fig8_flow_size_cdfs.rs

crates/bench/src/bin/fig8_flow_size_cdfs.rs:
