/root/repo/target/debug/deps/ablate_flowlet-583e4750c838cea0.d: crates/bench/src/bin/ablate_flowlet.rs Cargo.toml

/root/repo/target/debug/deps/libablate_flowlet-583e4750c838cea0.rmeta: crates/bench/src/bin/ablate_flowlet.rs Cargo.toml

crates/bench/src/bin/ablate_flowlet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
