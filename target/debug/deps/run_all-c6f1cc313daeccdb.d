/root/repo/target/debug/deps/run_all-c6f1cc313daeccdb.d: crates/bench/src/bin/run_all.rs Cargo.toml

/root/repo/target/debug/deps/librun_all-c6f1cc313daeccdb.rmeta: crates/bench/src/bin/run_all.rs Cargo.toml

crates/bench/src/bin/run_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
