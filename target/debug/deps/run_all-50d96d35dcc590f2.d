/root/repo/target/debug/deps/run_all-50d96d35dcc590f2.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-50d96d35dcc590f2: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
