/root/repo/target/debug/deps/fig10_permute_sweep-df928a404d8c79e7.d: crates/bench/src/bin/fig10_permute_sweep.rs

/root/repo/target/debug/deps/fig10_permute_sweep-df928a404d8c79e7: crates/bench/src/bin/fig10_permute_sweep.rs

crates/bench/src/bin/fig10_permute_sweep.rs:
