/root/repo/target/debug/deps/conservation-8a92f721ad57a42b.d: tests/conservation.rs

/root/repo/target/debug/deps/conservation-8a92f721ad57a42b: tests/conservation.rs

tests/conservation.rs:
