/root/repo/target/debug/deps/ablate_adaptive-d6cdc6c293fb6eef.d: crates/bench/src/bin/ablate_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libablate_adaptive-d6cdc6c293fb6eef.rmeta: crates/bench/src/bin/ablate_adaptive.rs Cargo.toml

crates/bench/src/bin/ablate_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
