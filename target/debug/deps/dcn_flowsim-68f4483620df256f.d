/root/repo/target/debug/deps/dcn_flowsim-68f4483620df256f.d: crates/flowsim/src/lib.rs

/root/repo/target/debug/deps/libdcn_flowsim-68f4483620df256f.rmeta: crates/flowsim/src/lib.rs

crates/flowsim/src/lib.rs:
