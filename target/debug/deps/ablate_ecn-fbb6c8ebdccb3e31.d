/root/repo/target/debug/deps/ablate_ecn-fbb6c8ebdccb3e31.d: crates/bench/src/bin/ablate_ecn.rs

/root/repo/target/debug/deps/ablate_ecn-fbb6c8ebdccb3e31: crates/bench/src/bin/ablate_ecn.rs

crates/bench/src/bin/ablate_ecn.rs:
