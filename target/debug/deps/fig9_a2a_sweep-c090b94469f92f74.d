/root/repo/target/debug/deps/fig9_a2a_sweep-c090b94469f92f74.d: crates/bench/src/bin/fig9_a2a_sweep.rs

/root/repo/target/debug/deps/fig9_a2a_sweep-c090b94469f92f74: crates/bench/src/bin/fig9_a2a_sweep.rs

crates/bench/src/bin/fig9_a2a_sweep.rs:
