/root/repo/target/debug/deps/fig5a_slimfly-6df6db808cf7e90e.d: crates/bench/src/bin/fig5a_slimfly.rs

/root/repo/target/debug/deps/fig5a_slimfly-6df6db808cf7e90e: crates/bench/src/bin/fig5a_slimfly.rs

crates/bench/src/bin/fig5a_slimfly.rs:
