/root/repo/target/debug/deps/fig5a_slimfly-0691fa418bee3523.d: crates/bench/src/bin/fig5a_slimfly.rs Cargo.toml

/root/repo/target/debug/deps/libfig5a_slimfly-0691fa418bee3523.rmeta: crates/bench/src/bin/fig5a_slimfly.rs Cargo.toml

crates/bench/src/bin/fig5a_slimfly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
