/root/repo/target/debug/deps/fig1_observation1-53922e47a92c9269.d: crates/bench/src/bin/fig1_observation1.rs

/root/repo/target/debug/deps/fig1_observation1-53922e47a92c9269: crates/bench/src/bin/fig1_observation1.rs

crates/bench/src/bin/fig1_observation1.rs:
