/root/repo/target/debug/deps/fig6b_jellyfish_scaling-521a8c82e35932fd.d: crates/bench/src/bin/fig6b_jellyfish_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig6b_jellyfish_scaling-521a8c82e35932fd.rmeta: crates/bench/src/bin/fig6b_jellyfish_scaling.rs Cargo.toml

crates/bench/src/bin/fig6b_jellyfish_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
