/root/repo/target/debug/deps/properties-5e9c0e0aa949a3ff.d: crates/routing/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5e9c0e0aa949a3ff.rmeta: crates/routing/tests/properties.rs Cargo.toml

crates/routing/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
