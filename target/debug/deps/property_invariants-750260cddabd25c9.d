/root/repo/target/debug/deps/property_invariants-750260cddabd25c9.d: tests/property_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_invariants-750260cddabd25c9.rmeta: tests/property_invariants.rs Cargo.toml

tests/property_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
