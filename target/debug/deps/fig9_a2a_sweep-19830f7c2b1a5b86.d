/root/repo/target/debug/deps/fig9_a2a_sweep-19830f7c2b1a5b86.d: crates/bench/src/bin/fig9_a2a_sweep.rs

/root/repo/target/debug/deps/fig9_a2a_sweep-19830f7c2b1a5b86: crates/bench/src/bin/fig9_a2a_sweep.rs

crates/bench/src/bin/fig9_a2a_sweep.rs:
