/root/repo/target/debug/deps/ablate_failures-a93ce07a0e285ed8.d: crates/bench/src/bin/ablate_failures.rs Cargo.toml

/root/repo/target/debug/deps/libablate_failures-a93ce07a0e285ed8.rmeta: crates/bench/src/bin/ablate_failures.rs Cargo.toml

crates/bench/src/bin/ablate_failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
