/root/repo/target/debug/deps/fig3_xpander_floorplan-a90925ba54a3a631.d: crates/bench/src/bin/fig3_xpander_floorplan.rs

/root/repo/target/debug/deps/fig3_xpander_floorplan-a90925ba54a3a631: crates/bench/src/bin/fig3_xpander_floorplan.rs

crates/bench/src/bin/fig3_xpander_floorplan.rs:
