/root/repo/target/debug/deps/fig14_skew-a98a76729d9db4fb.d: crates/bench/src/bin/fig14_skew.rs

/root/repo/target/debug/deps/fig14_skew-a98a76729d9db4fb: crates/bench/src/bin/fig14_skew.rs

crates/bench/src/bin/fig14_skew.rs:
