/root/repo/target/debug/deps/dcn_json-6f75a2f58b7acd6b.d: crates/json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_json-6f75a2f58b7acd6b.rmeta: crates/json/src/lib.rs Cargo.toml

crates/json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
