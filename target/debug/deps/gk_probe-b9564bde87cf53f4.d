/root/repo/target/debug/deps/gk_probe-b9564bde87cf53f4.d: crates/bench/src/bin/gk_probe.rs

/root/repo/target/debug/deps/gk_probe-b9564bde87cf53f4: crates/bench/src/bin/gk_probe.rs

crates/bench/src/bin/gk_probe.rs:
