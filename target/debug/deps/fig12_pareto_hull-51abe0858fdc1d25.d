/root/repo/target/debug/deps/fig12_pareto_hull-51abe0858fdc1d25.d: crates/bench/src/bin/fig12_pareto_hull.rs

/root/repo/target/debug/deps/fig12_pareto_hull-51abe0858fdc1d25: crates/bench/src/bin/fig12_pareto_hull.rs

crates/bench/src/bin/fig12_pareto_hull.rs:
