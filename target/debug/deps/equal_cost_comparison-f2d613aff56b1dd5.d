/root/repo/target/debug/deps/equal_cost_comparison-f2d613aff56b1dd5.d: tests/equal_cost_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libequal_cost_comparison-f2d613aff56b1dd5.rmeta: tests/equal_cost_comparison.rs Cargo.toml

tests/equal_cost_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
