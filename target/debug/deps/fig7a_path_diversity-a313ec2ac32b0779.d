/root/repo/target/debug/deps/fig7a_path_diversity-a313ec2ac32b0779.d: crates/bench/src/bin/fig7a_path_diversity.rs

/root/repo/target/debug/deps/fig7a_path_diversity-a313ec2ac32b0779: crates/bench/src/bin/fig7a_path_diversity.rs

crates/bench/src/bin/fig7a_path_diversity.rs:
