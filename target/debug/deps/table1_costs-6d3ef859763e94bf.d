/root/repo/target/debug/deps/table1_costs-6d3ef859763e94bf.d: crates/bench/src/bin/table1_costs.rs

/root/repo/target/debug/deps/table1_costs-6d3ef859763e94bf: crates/bench/src/bin/table1_costs.rs

crates/bench/src/bin/table1_costs.rs:
