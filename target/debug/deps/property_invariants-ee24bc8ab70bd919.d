/root/repo/target/debug/deps/property_invariants-ee24bc8ab70bd919.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-ee24bc8ab70bd919: tests/property_invariants.rs

tests/property_invariants.rs:
