/root/repo/target/debug/deps/ablate_adaptive-c8c39576d912eb55.d: crates/bench/src/bin/ablate_adaptive.rs

/root/repo/target/debug/deps/ablate_adaptive-c8c39576d912eb55: crates/bench/src/bin/ablate_adaptive.rs

crates/bench/src/bin/ablate_adaptive.rs:
