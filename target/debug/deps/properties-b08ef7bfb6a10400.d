/root/repo/target/debug/deps/properties-b08ef7bfb6a10400.d: crates/maxflow/tests/properties.rs

/root/repo/target/debug/deps/properties-b08ef7bfb6a10400: crates/maxflow/tests/properties.rs

crates/maxflow/tests/properties.rs:
