/root/repo/target/debug/deps/fig1_observation1-0b94919adeb35a47.d: crates/bench/src/bin/fig1_observation1.rs

/root/repo/target/debug/deps/fig1_observation1-0b94919adeb35a47: crates/bench/src/bin/fig1_observation1.rs

crates/bench/src/bin/fig1_observation1.rs:
