/root/repo/target/debug/deps/topology-e2ef383ceb803ff6.d: crates/bench/benches/topology.rs

/root/repo/target/debug/deps/topology-e2ef383ceb803ff6: crates/bench/benches/topology.rs

crates/bench/benches/topology.rs:
