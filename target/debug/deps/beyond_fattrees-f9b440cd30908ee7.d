/root/repo/target/debug/deps/beyond_fattrees-f9b440cd30908ee7.d: src/lib.rs

/root/repo/target/debug/deps/libbeyond_fattrees-f9b440cd30908ee7.rlib: src/lib.rs

/root/repo/target/debug/deps/libbeyond_fattrees-f9b440cd30908ee7.rmeta: src/lib.rs

src/lib.rs:
