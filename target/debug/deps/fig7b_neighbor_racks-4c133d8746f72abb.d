/root/repo/target/debug/deps/fig7b_neighbor_racks-4c133d8746f72abb.d: crates/bench/src/bin/fig7b_neighbor_racks.rs Cargo.toml

/root/repo/target/debug/deps/libfig7b_neighbor_racks-4c133d8746f72abb.rmeta: crates/bench/src/bin/fig7b_neighbor_racks.rs Cargo.toml

crates/bench/src/bin/fig7b_neighbor_racks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
