/root/repo/target/debug/deps/ablate_failures-70c6d65ddeb62249.d: crates/bench/src/bin/ablate_failures.rs

/root/repo/target/debug/deps/ablate_failures-70c6d65ddeb62249: crates/bench/src/bin/ablate_failures.rs

crates/bench/src/bin/ablate_failures.rs:
