/root/repo/target/debug/deps/table1_costs-50e3a7b3f2c19e69.d: crates/bench/src/bin/table1_costs.rs

/root/repo/target/debug/deps/table1_costs-50e3a7b3f2c19e69: crates/bench/src/bin/table1_costs.rs

crates/bench/src/bin/table1_costs.rs:
