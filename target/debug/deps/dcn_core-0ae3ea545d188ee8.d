/root/repo/target/debug/deps/dcn_core-0ae3ea545d188ee8.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_core-0ae3ea545d188ee8.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/dynamicnet.rs:
crates/core/src/experiment.rs:
crates/core/src/flex.rs:
crates/core/src/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
