/root/repo/target/debug/deps/fig15_large_scale-a8194d28e49e7d0a.d: crates/bench/src/bin/fig15_large_scale.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_large_scale-a8194d28e49e7d0a.rmeta: crates/bench/src/bin/fig15_large_scale.rs Cargo.toml

crates/bench/src/bin/fig15_large_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
