/root/repo/target/debug/deps/fig3_xpander_floorplan-33191bbf08b3824f.d: crates/bench/src/bin/fig3_xpander_floorplan.rs

/root/repo/target/debug/deps/fig3_xpander_floorplan-33191bbf08b3824f: crates/bench/src/bin/fig3_xpander_floorplan.rs

crates/bench/src/bin/fig3_xpander_floorplan.rs:
