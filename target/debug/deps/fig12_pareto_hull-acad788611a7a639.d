/root/repo/target/debug/deps/fig12_pareto_hull-acad788611a7a639.d: crates/bench/src/bin/fig12_pareto_hull.rs

/root/repo/target/debug/deps/fig12_pareto_hull-acad788611a7a639: crates/bench/src/bin/fig12_pareto_hull.rs

crates/bench/src/bin/fig12_pareto_hull.rs:
