/root/repo/target/debug/deps/gk_probe-401a2c9967bd8ed2.d: crates/bench/src/bin/gk_probe.rs

/root/repo/target/debug/deps/gk_probe-401a2c9967bd8ed2: crates/bench/src/bin/gk_probe.rs

crates/bench/src/bin/gk_probe.rs:
