/root/repo/target/debug/deps/fig15_large_scale-948f129785cc05b6.d: crates/bench/src/bin/fig15_large_scale.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_large_scale-948f129785cc05b6.rmeta: crates/bench/src/bin/fig15_large_scale.rs Cargo.toml

crates/bench/src/bin/fig15_large_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
