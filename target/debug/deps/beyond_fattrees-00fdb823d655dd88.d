/root/repo/target/debug/deps/beyond_fattrees-00fdb823d655dd88.d: src/lib.rs

/root/repo/target/debug/deps/libbeyond_fattrees-00fdb823d655dd88.rmeta: src/lib.rs

src/lib.rs:
