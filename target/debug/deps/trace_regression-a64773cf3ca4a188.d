/root/repo/target/debug/deps/trace_regression-a64773cf3ca4a188.d: tests/trace_regression.rs

/root/repo/target/debug/deps/trace_regression-a64773cf3ca4a188: tests/trace_regression.rs

tests/trace_regression.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
