/root/repo/target/debug/deps/conjecture24_search-16cb485c0ecbd965.d: crates/bench/src/bin/conjecture24_search.rs

/root/repo/target/debug/deps/conjecture24_search-16cb485c0ecbd965: crates/bench/src/bin/conjecture24_search.rs

crates/bench/src/bin/conjecture24_search.rs:
