/root/repo/target/debug/deps/fig1_observation1-60c704251a8cc5fc.d: crates/bench/src/bin/fig1_observation1.rs

/root/repo/target/debug/deps/fig1_observation1-60c704251a8cc5fc: crates/bench/src/bin/fig1_observation1.rs

crates/bench/src/bin/fig1_observation1.rs:
