/root/repo/target/debug/deps/fig5b_longhop-3bcaa092bfe9fea2.d: crates/bench/src/bin/fig5b_longhop.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b_longhop-3bcaa092bfe9fea2.rmeta: crates/bench/src/bin/fig5b_longhop.rs Cargo.toml

crates/bench/src/bin/fig5b_longhop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
