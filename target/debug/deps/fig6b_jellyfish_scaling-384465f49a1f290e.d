/root/repo/target/debug/deps/fig6b_jellyfish_scaling-384465f49a1f290e.d: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

/root/repo/target/debug/deps/fig6b_jellyfish_scaling-384465f49a1f290e: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

crates/bench/src/bin/fig6b_jellyfish_scaling.rs:
