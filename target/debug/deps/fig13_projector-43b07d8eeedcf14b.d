/root/repo/target/debug/deps/fig13_projector-43b07d8eeedcf14b.d: crates/bench/src/bin/fig13_projector.rs

/root/repo/target/debug/deps/fig13_projector-43b07d8eeedcf14b: crates/bench/src/bin/fig13_projector.rs

crates/bench/src/bin/fig13_projector.rs:
