/root/repo/target/debug/deps/dcn_core-32ed11a881098818.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/libdcn_core-32ed11a881098818.rlib: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/libdcn_core-32ed11a881098818.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/dynamicnet.rs:
crates/core/src/experiment.rs:
crates/core/src/flex.rs:
crates/core/src/theory.rs:
