/root/repo/target/debug/deps/properties-3ebecd5ac3458626.d: crates/topology/tests/properties.rs

/root/repo/target/debug/deps/properties-3ebecd5ac3458626: crates/topology/tests/properties.rs

crates/topology/tests/properties.rs:
