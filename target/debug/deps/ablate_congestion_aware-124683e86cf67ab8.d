/root/repo/target/debug/deps/ablate_congestion_aware-124683e86cf67ab8.d: crates/bench/src/bin/ablate_congestion_aware.rs

/root/repo/target/debug/deps/ablate_congestion_aware-124683e86cf67ab8: crates/bench/src/bin/ablate_congestion_aware.rs

crates/bench/src/bin/ablate_congestion_aware.rs:
