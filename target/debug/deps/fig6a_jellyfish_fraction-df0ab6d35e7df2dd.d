/root/repo/target/debug/deps/fig6a_jellyfish_fraction-df0ab6d35e7df2dd.d: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

/root/repo/target/debug/deps/fig6a_jellyfish_fraction-df0ab6d35e7df2dd: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

crates/bench/src/bin/fig6a_jellyfish_fraction.rs:
