/root/repo/target/debug/deps/dcnsim-f90bd97ad1ef21c5.d: src/bin/dcnsim.rs

/root/repo/target/debug/deps/dcnsim-f90bd97ad1ef21c5: src/bin/dcnsim.rs

src/bin/dcnsim.rs:
