/root/repo/target/debug/deps/trace_overhead-5e1bd80be6581779.d: crates/bench/src/bin/trace_overhead.rs

/root/repo/target/debug/deps/trace_overhead-5e1bd80be6581779: crates/bench/src/bin/trace_overhead.rs

crates/bench/src/bin/trace_overhead.rs:
