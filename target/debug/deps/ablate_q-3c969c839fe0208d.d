/root/repo/target/debug/deps/ablate_q-3c969c839fe0208d.d: crates/bench/src/bin/ablate_q.rs Cargo.toml

/root/repo/target/debug/deps/libablate_q-3c969c839fe0208d.rmeta: crates/bench/src/bin/ablate_q.rs Cargo.toml

crates/bench/src/bin/ablate_q.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
