/root/repo/target/debug/deps/fig6b_jellyfish_scaling-21e3cce7e29467e2.d: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

/root/repo/target/debug/deps/fig6b_jellyfish_scaling-21e3cce7e29467e2: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

crates/bench/src/bin/fig6b_jellyfish_scaling.rs:
