/root/repo/target/debug/deps/properties-49ba211d17870bfd.d: crates/maxflow/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-49ba211d17870bfd.rmeta: crates/maxflow/tests/properties.rs Cargo.toml

crates/maxflow/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
