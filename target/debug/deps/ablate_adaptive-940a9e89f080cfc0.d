/root/repo/target/debug/deps/ablate_adaptive-940a9e89f080cfc0.d: crates/bench/src/bin/ablate_adaptive.rs

/root/repo/target/debug/deps/ablate_adaptive-940a9e89f080cfc0: crates/bench/src/bin/ablate_adaptive.rs

crates/bench/src/bin/ablate_adaptive.rs:
