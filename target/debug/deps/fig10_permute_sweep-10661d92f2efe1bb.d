/root/repo/target/debug/deps/fig10_permute_sweep-10661d92f2efe1bb.d: crates/bench/src/bin/fig10_permute_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_permute_sweep-10661d92f2efe1bb.rmeta: crates/bench/src/bin/fig10_permute_sweep.rs Cargo.toml

crates/bench/src/bin/fig10_permute_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
