/root/repo/target/debug/deps/properties-766c8fa0071a2c0c.d: crates/flowsim/tests/properties.rs

/root/repo/target/debug/deps/properties-766c8fa0071a2c0c: crates/flowsim/tests/properties.rs

crates/flowsim/tests/properties.rs:
