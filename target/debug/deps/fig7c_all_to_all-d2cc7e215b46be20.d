/root/repo/target/debug/deps/fig7c_all_to_all-d2cc7e215b46be20.d: crates/bench/src/bin/fig7c_all_to_all.rs

/root/repo/target/debug/deps/fig7c_all_to_all-d2cc7e215b46be20: crates/bench/src/bin/fig7c_all_to_all.rs

crates/bench/src/bin/fig7c_all_to_all.rs:
