/root/repo/target/debug/deps/fig14_skew-a43a33fcd8d9a58a.d: crates/bench/src/bin/fig14_skew.rs

/root/repo/target/debug/deps/fig14_skew-a43a33fcd8d9a58a: crates/bench/src/bin/fig14_skew.rs

crates/bench/src/bin/fig14_skew.rs:
