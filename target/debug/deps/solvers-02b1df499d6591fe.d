/root/repo/target/debug/deps/solvers-02b1df499d6591fe.d: crates/bench/benches/solvers.rs

/root/repo/target/debug/deps/solvers-02b1df499d6591fe: crates/bench/benches/solvers.rs

crates/bench/benches/solvers.rs:
