/root/repo/target/debug/deps/fig4_toy_example-7d299dff669a392c.d: crates/bench/src/bin/fig4_toy_example.rs

/root/repo/target/debug/deps/fig4_toy_example-7d299dff669a392c: crates/bench/src/bin/fig4_toy_example.rs

crates/bench/src/bin/fig4_toy_example.rs:
