/root/repo/target/debug/deps/fig14_skew-88871edffe59ddc7.d: crates/bench/src/bin/fig14_skew.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_skew-88871edffe59ddc7.rmeta: crates/bench/src/bin/fig14_skew.rs Cargo.toml

crates/bench/src/bin/fig14_skew.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
