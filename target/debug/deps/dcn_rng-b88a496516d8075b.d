/root/repo/target/debug/deps/dcn_rng-b88a496516d8075b.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/dcn_rng-b88a496516d8075b: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
