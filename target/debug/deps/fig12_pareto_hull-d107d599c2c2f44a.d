/root/repo/target/debug/deps/fig12_pareto_hull-d107d599c2c2f44a.d: crates/bench/src/bin/fig12_pareto_hull.rs

/root/repo/target/debug/deps/fig12_pareto_hull-d107d599c2c2f44a: crates/bench/src/bin/fig12_pareto_hull.rs

crates/bench/src/bin/fig12_pareto_hull.rs:
