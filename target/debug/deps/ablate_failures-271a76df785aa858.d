/root/repo/target/debug/deps/ablate_failures-271a76df785aa858.d: crates/bench/src/bin/ablate_failures.rs

/root/repo/target/debug/deps/ablate_failures-271a76df785aa858: crates/bench/src/bin/ablate_failures.rs

crates/bench/src/bin/ablate_failures.rs:
