/root/repo/target/debug/deps/beyond_fattrees-e2af6e8f3c721572.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbeyond_fattrees-e2af6e8f3c721572.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
