/root/repo/target/debug/deps/fig13_projector-c3edda49e6eab962.d: crates/bench/src/bin/fig13_projector.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_projector-c3edda49e6eab962.rmeta: crates/bench/src/bin/fig13_projector.rs Cargo.toml

crates/bench/src/bin/fig13_projector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
