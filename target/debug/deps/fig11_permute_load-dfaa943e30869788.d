/root/repo/target/debug/deps/fig11_permute_load-dfaa943e30869788.d: crates/bench/src/bin/fig11_permute_load.rs

/root/repo/target/debug/deps/fig11_permute_load-dfaa943e30869788: crates/bench/src/bin/fig11_permute_load.rs

crates/bench/src/bin/fig11_permute_load.rs:
