/root/repo/target/debug/deps/dcn_maxflow-3cbb1c73dd42e8f3.d: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs

/root/repo/target/debug/deps/libdcn_maxflow-3cbb1c73dd42e8f3.rmeta: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs

crates/maxflow/src/lib.rs:
crates/maxflow/src/bound.rs:
crates/maxflow/src/concurrent.rs:
crates/maxflow/src/dinic.rs:
crates/maxflow/src/lp.rs:
crates/maxflow/src/network.rs:
