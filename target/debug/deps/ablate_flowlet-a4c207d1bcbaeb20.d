/root/repo/target/debug/deps/ablate_flowlet-a4c207d1bcbaeb20.d: crates/bench/src/bin/ablate_flowlet.rs Cargo.toml

/root/repo/target/debug/deps/libablate_flowlet-a4c207d1bcbaeb20.rmeta: crates/bench/src/bin/ablate_flowlet.rs Cargo.toml

crates/bench/src/bin/ablate_flowlet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
