/root/repo/target/debug/deps/dcn_bench-c62a492ebe2ee32c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_bench-c62a492ebe2ee32c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
