/root/repo/target/debug/deps/dcn_flowsim-4d31eb5c7440796e.d: crates/flowsim/src/lib.rs

/root/repo/target/debug/deps/dcn_flowsim-4d31eb5c7440796e: crates/flowsim/src/lib.rs

crates/flowsim/src/lib.rs:
