/root/repo/target/debug/deps/fig7b_neighbor_racks-60f6d0f34a438ca0.d: crates/bench/src/bin/fig7b_neighbor_racks.rs

/root/repo/target/debug/deps/fig7b_neighbor_racks-60f6d0f34a438ca0: crates/bench/src/bin/fig7b_neighbor_racks.rs

crates/bench/src/bin/fig7b_neighbor_racks.rs:
