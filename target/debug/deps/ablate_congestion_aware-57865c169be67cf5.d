/root/repo/target/debug/deps/ablate_congestion_aware-57865c169be67cf5.d: crates/bench/src/bin/ablate_congestion_aware.rs

/root/repo/target/debug/deps/ablate_congestion_aware-57865c169be67cf5: crates/bench/src/bin/ablate_congestion_aware.rs

crates/bench/src/bin/ablate_congestion_aware.rs:
