/root/repo/target/debug/deps/fig6b_jellyfish_scaling-4995119c9c91f427.d: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

/root/repo/target/debug/deps/fig6b_jellyfish_scaling-4995119c9c91f427: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

crates/bench/src/bin/fig6b_jellyfish_scaling.rs:
