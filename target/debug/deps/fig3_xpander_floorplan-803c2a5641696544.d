/root/repo/target/debug/deps/fig3_xpander_floorplan-803c2a5641696544.d: crates/bench/src/bin/fig3_xpander_floorplan.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_xpander_floorplan-803c2a5641696544.rmeta: crates/bench/src/bin/fig3_xpander_floorplan.rs Cargo.toml

crates/bench/src/bin/fig3_xpander_floorplan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
