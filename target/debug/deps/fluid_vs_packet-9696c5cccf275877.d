/root/repo/target/debug/deps/fluid_vs_packet-9696c5cccf275877.d: tests/fluid_vs_packet.rs

/root/repo/target/debug/deps/fluid_vs_packet-9696c5cccf275877: tests/fluid_vs_packet.rs

tests/fluid_vs_packet.rs:
