/root/repo/target/debug/deps/fig7b_neighbor_racks-56b73f7ed5e91259.d: crates/bench/src/bin/fig7b_neighbor_racks.rs

/root/repo/target/debug/deps/fig7b_neighbor_racks-56b73f7ed5e91259: crates/bench/src/bin/fig7b_neighbor_racks.rs

crates/bench/src/bin/fig7b_neighbor_racks.rs:
