/root/repo/target/debug/deps/fig8_flow_size_cdfs-1413144b3d9ea1dc.d: crates/bench/src/bin/fig8_flow_size_cdfs.rs

/root/repo/target/debug/deps/fig8_flow_size_cdfs-1413144b3d9ea1dc: crates/bench/src/bin/fig8_flow_size_cdfs.rs

crates/bench/src/bin/fig8_flow_size_cdfs.rs:
