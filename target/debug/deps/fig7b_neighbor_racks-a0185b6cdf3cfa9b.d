/root/repo/target/debug/deps/fig7b_neighbor_racks-a0185b6cdf3cfa9b.d: crates/bench/src/bin/fig7b_neighbor_racks.rs

/root/repo/target/debug/deps/fig7b_neighbor_racks-a0185b6cdf3cfa9b: crates/bench/src/bin/fig7b_neighbor_racks.rs

crates/bench/src/bin/fig7b_neighbor_racks.rs:
