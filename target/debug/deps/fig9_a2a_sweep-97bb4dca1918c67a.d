/root/repo/target/debug/deps/fig9_a2a_sweep-97bb4dca1918c67a.d: crates/bench/src/bin/fig9_a2a_sweep.rs

/root/repo/target/debug/deps/fig9_a2a_sweep-97bb4dca1918c67a: crates/bench/src/bin/fig9_a2a_sweep.rs

crates/bench/src/bin/fig9_a2a_sweep.rs:
