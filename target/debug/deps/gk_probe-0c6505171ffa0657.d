/root/repo/target/debug/deps/gk_probe-0c6505171ffa0657.d: crates/bench/src/bin/gk_probe.rs Cargo.toml

/root/repo/target/debug/deps/libgk_probe-0c6505171ffa0657.rmeta: crates/bench/src/bin/gk_probe.rs Cargo.toml

crates/bench/src/bin/gk_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
