/root/repo/target/debug/deps/ablate_q-d979eeb807622ae1.d: crates/bench/src/bin/ablate_q.rs

/root/repo/target/debug/deps/ablate_q-d979eeb807622ae1: crates/bench/src/bin/ablate_q.rs

crates/bench/src/bin/ablate_q.rs:
