/root/repo/target/debug/deps/dcn_routing-988ec44a6b584c86.d: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

/root/repo/target/debug/deps/libdcn_routing-988ec44a6b584c86.rmeta: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

crates/routing/src/lib.rs:
crates/routing/src/ecmp.rs:
crates/routing/src/hyb.rs:
crates/routing/src/ksp.rs:
crates/routing/src/kspsel.rs:
crates/routing/src/vlb.rs:
