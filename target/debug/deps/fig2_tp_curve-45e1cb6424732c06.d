/root/repo/target/debug/deps/fig2_tp_curve-45e1cb6424732c06.d: crates/bench/src/bin/fig2_tp_curve.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_tp_curve-45e1cb6424732c06.rmeta: crates/bench/src/bin/fig2_tp_curve.rs Cargo.toml

crates/bench/src/bin/fig2_tp_curve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
