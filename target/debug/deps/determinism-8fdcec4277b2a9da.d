/root/repo/target/debug/deps/determinism-8fdcec4277b2a9da.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-8fdcec4277b2a9da: tests/determinism.rs

tests/determinism.rs:
