/root/repo/target/debug/deps/properties-5f31a3582419a115.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-5f31a3582419a115: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
