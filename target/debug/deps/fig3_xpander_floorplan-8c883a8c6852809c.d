/root/repo/target/debug/deps/fig3_xpander_floorplan-8c883a8c6852809c.d: crates/bench/src/bin/fig3_xpander_floorplan.rs

/root/repo/target/debug/deps/fig3_xpander_floorplan-8c883a8c6852809c: crates/bench/src/bin/fig3_xpander_floorplan.rs

crates/bench/src/bin/fig3_xpander_floorplan.rs:
