/root/repo/target/debug/deps/conjecture24_search-bad45dd9f7dae710.d: crates/bench/src/bin/conjecture24_search.rs Cargo.toml

/root/repo/target/debug/deps/libconjecture24_search-bad45dd9f7dae710.rmeta: crates/bench/src/bin/conjecture24_search.rs Cargo.toml

crates/bench/src/bin/conjecture24_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
