/root/repo/target/debug/deps/ablate_adaptive-1730d0ba77a1c8ed.d: crates/bench/src/bin/ablate_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libablate_adaptive-1730d0ba77a1c8ed.rmeta: crates/bench/src/bin/ablate_adaptive.rs Cargo.toml

crates/bench/src/bin/ablate_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
