/root/repo/target/debug/deps/dcn_workloads-d0783304d87c7ccd.d: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

/root/repo/target/debug/deps/libdcn_workloads-d0783304d87c7ccd.rlib: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

/root/repo/target/debug/deps/libdcn_workloads-d0783304d87c7ccd.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/fluid.rs:
crates/workloads/src/fsize.rs:
crates/workloads/src/tm.rs:
