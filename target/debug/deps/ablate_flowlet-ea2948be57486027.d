/root/repo/target/debug/deps/ablate_flowlet-ea2948be57486027.d: crates/bench/src/bin/ablate_flowlet.rs

/root/repo/target/debug/deps/ablate_flowlet-ea2948be57486027: crates/bench/src/bin/ablate_flowlet.rs

crates/bench/src/bin/ablate_flowlet.rs:
