/root/repo/target/debug/deps/fig14_skew-b920c86795240814.d: crates/bench/src/bin/fig14_skew.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_skew-b920c86795240814.rmeta: crates/bench/src/bin/fig14_skew.rs Cargo.toml

crates/bench/src/bin/fig14_skew.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
