/root/repo/target/debug/deps/fig14_skew-5d4b7b8f9b5733db.d: crates/bench/src/bin/fig14_skew.rs

/root/repo/target/debug/deps/fig14_skew-5d4b7b8f9b5733db: crates/bench/src/bin/fig14_skew.rs

crates/bench/src/bin/fig14_skew.rs:
