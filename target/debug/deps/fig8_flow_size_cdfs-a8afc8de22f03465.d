/root/repo/target/debug/deps/fig8_flow_size_cdfs-a8afc8de22f03465.d: crates/bench/src/bin/fig8_flow_size_cdfs.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_flow_size_cdfs-a8afc8de22f03465.rmeta: crates/bench/src/bin/fig8_flow_size_cdfs.rs Cargo.toml

crates/bench/src/bin/fig8_flow_size_cdfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
