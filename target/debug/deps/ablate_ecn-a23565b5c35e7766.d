/root/repo/target/debug/deps/ablate_ecn-a23565b5c35e7766.d: crates/bench/src/bin/ablate_ecn.rs

/root/repo/target/debug/deps/ablate_ecn-a23565b5c35e7766: crates/bench/src/bin/ablate_ecn.rs

crates/bench/src/bin/ablate_ecn.rs:
