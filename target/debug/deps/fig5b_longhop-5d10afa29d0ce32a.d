/root/repo/target/debug/deps/fig5b_longhop-5d10afa29d0ce32a.d: crates/bench/src/bin/fig5b_longhop.rs

/root/repo/target/debug/deps/fig5b_longhop-5d10afa29d0ce32a: crates/bench/src/bin/fig5b_longhop.rs

crates/bench/src/bin/fig5b_longhop.rs:
