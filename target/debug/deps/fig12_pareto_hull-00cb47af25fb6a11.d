/root/repo/target/debug/deps/fig12_pareto_hull-00cb47af25fb6a11.d: crates/bench/src/bin/fig12_pareto_hull.rs

/root/repo/target/debug/deps/fig12_pareto_hull-00cb47af25fb6a11: crates/bench/src/bin/fig12_pareto_hull.rs

crates/bench/src/bin/fig12_pareto_hull.rs:
