/root/repo/target/debug/deps/ablate_transport-73c084ec301bcdbb.d: crates/bench/src/bin/ablate_transport.rs Cargo.toml

/root/repo/target/debug/deps/libablate_transport-73c084ec301bcdbb.rmeta: crates/bench/src/bin/ablate_transport.rs Cargo.toml

crates/bench/src/bin/ablate_transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
