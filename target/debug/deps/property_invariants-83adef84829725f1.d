/root/repo/target/debug/deps/property_invariants-83adef84829725f1.d: tests/property_invariants.rs

/root/repo/target/debug/deps/property_invariants-83adef84829725f1: tests/property_invariants.rs

tests/property_invariants.rs:
