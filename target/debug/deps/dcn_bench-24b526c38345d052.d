/root/repo/target/debug/deps/dcn_bench-24b526c38345d052.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dcn_bench-24b526c38345d052: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
