/root/repo/target/debug/deps/properties-eb70991035a0b3c0.d: crates/flowsim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-eb70991035a0b3c0.rmeta: crates/flowsim/tests/properties.rs Cargo.toml

crates/flowsim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
