/root/repo/target/debug/deps/properties-636625394cb99d49.d: crates/workloads/tests/properties.rs

/root/repo/target/debug/deps/properties-636625394cb99d49: crates/workloads/tests/properties.rs

crates/workloads/tests/properties.rs:
