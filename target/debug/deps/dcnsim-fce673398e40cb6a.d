/root/repo/target/debug/deps/dcnsim-fce673398e40cb6a.d: src/bin/dcnsim.rs Cargo.toml

/root/repo/target/debug/deps/libdcnsim-fce673398e40cb6a.rmeta: src/bin/dcnsim.rs Cargo.toml

src/bin/dcnsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
