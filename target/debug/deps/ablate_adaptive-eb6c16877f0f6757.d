/root/repo/target/debug/deps/ablate_adaptive-eb6c16877f0f6757.d: crates/bench/src/bin/ablate_adaptive.rs

/root/repo/target/debug/deps/ablate_adaptive-eb6c16877f0f6757: crates/bench/src/bin/ablate_adaptive.rs

crates/bench/src/bin/ablate_adaptive.rs:
