/root/repo/target/debug/deps/fig10_permute_sweep-4655dc881d9af85e.d: crates/bench/src/bin/fig10_permute_sweep.rs

/root/repo/target/debug/deps/fig10_permute_sweep-4655dc881d9af85e: crates/bench/src/bin/fig10_permute_sweep.rs

crates/bench/src/bin/fig10_permute_sweep.rs:
