/root/repo/target/debug/deps/ablate_q-250497ca2279a36a.d: crates/bench/src/bin/ablate_q.rs

/root/repo/target/debug/deps/ablate_q-250497ca2279a36a: crates/bench/src/bin/ablate_q.rs

crates/bench/src/bin/ablate_q.rs:
