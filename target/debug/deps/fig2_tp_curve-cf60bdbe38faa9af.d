/root/repo/target/debug/deps/fig2_tp_curve-cf60bdbe38faa9af.d: crates/bench/src/bin/fig2_tp_curve.rs

/root/repo/target/debug/deps/fig2_tp_curve-cf60bdbe38faa9af: crates/bench/src/bin/fig2_tp_curve.rs

crates/bench/src/bin/fig2_tp_curve.rs:
