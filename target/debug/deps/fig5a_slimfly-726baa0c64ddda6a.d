/root/repo/target/debug/deps/fig5a_slimfly-726baa0c64ddda6a.d: crates/bench/src/bin/fig5a_slimfly.rs

/root/repo/target/debug/deps/fig5a_slimfly-726baa0c64ddda6a: crates/bench/src/bin/fig5a_slimfly.rs

crates/bench/src/bin/fig5a_slimfly.rs:
