/root/repo/target/debug/deps/run_all-1291e1be9a6c1092.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-1291e1be9a6c1092: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
