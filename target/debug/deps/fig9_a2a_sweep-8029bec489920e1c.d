/root/repo/target/debug/deps/fig9_a2a_sweep-8029bec489920e1c.d: crates/bench/src/bin/fig9_a2a_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_a2a_sweep-8029bec489920e1c.rmeta: crates/bench/src/bin/fig9_a2a_sweep.rs Cargo.toml

crates/bench/src/bin/fig9_a2a_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
