/root/repo/target/debug/deps/fig7b_neighbor_racks-39999d214e7cf841.d: crates/bench/src/bin/fig7b_neighbor_racks.rs

/root/repo/target/debug/deps/fig7b_neighbor_racks-39999d214e7cf841: crates/bench/src/bin/fig7b_neighbor_racks.rs

crates/bench/src/bin/fig7b_neighbor_racks.rs:
