/root/repo/target/debug/deps/fig5a_slimfly-98a646abd8492779.d: crates/bench/src/bin/fig5a_slimfly.rs

/root/repo/target/debug/deps/fig5a_slimfly-98a646abd8492779: crates/bench/src/bin/fig5a_slimfly.rs

crates/bench/src/bin/fig5a_slimfly.rs:
