/root/repo/target/debug/deps/dcn_workloads-4c72fa24360e9c3c.d: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

/root/repo/target/debug/deps/libdcn_workloads-4c72fa24360e9c3c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/fluid.rs:
crates/workloads/src/fsize.rs:
crates/workloads/src/tm.rs:
