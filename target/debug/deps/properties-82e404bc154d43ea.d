/root/repo/target/debug/deps/properties-82e404bc154d43ea.d: crates/routing/tests/properties.rs

/root/repo/target/debug/deps/properties-82e404bc154d43ea: crates/routing/tests/properties.rs

crates/routing/tests/properties.rs:
