/root/repo/target/debug/deps/dcn_maxflow-7ef36209b1b77331.d: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_maxflow-7ef36209b1b77331.rmeta: crates/maxflow/src/lib.rs crates/maxflow/src/bound.rs crates/maxflow/src/concurrent.rs crates/maxflow/src/dinic.rs crates/maxflow/src/lp.rs crates/maxflow/src/network.rs Cargo.toml

crates/maxflow/src/lib.rs:
crates/maxflow/src/bound.rs:
crates/maxflow/src/concurrent.rs:
crates/maxflow/src/dinic.rs:
crates/maxflow/src/lp.rs:
crates/maxflow/src/network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
