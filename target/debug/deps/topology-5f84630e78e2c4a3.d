/root/repo/target/debug/deps/topology-5f84630e78e2c4a3.d: crates/bench/benches/topology.rs Cargo.toml

/root/repo/target/debug/deps/libtopology-5f84630e78e2c4a3.rmeta: crates/bench/benches/topology.rs Cargo.toml

crates/bench/benches/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
