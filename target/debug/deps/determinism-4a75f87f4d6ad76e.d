/root/repo/target/debug/deps/determinism-4a75f87f4d6ad76e.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-4a75f87f4d6ad76e.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
