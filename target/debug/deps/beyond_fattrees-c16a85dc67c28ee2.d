/root/repo/target/debug/deps/beyond_fattrees-c16a85dc67c28ee2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbeyond_fattrees-c16a85dc67c28ee2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
