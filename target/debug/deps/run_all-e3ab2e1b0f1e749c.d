/root/repo/target/debug/deps/run_all-e3ab2e1b0f1e749c.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-e3ab2e1b0f1e749c: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
