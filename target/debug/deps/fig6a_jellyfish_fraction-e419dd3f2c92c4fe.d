/root/repo/target/debug/deps/fig6a_jellyfish_fraction-e419dd3f2c92c4fe.d: crates/bench/src/bin/fig6a_jellyfish_fraction.rs Cargo.toml

/root/repo/target/debug/deps/libfig6a_jellyfish_fraction-e419dd3f2c92c4fe.rmeta: crates/bench/src/bin/fig6a_jellyfish_fraction.rs Cargo.toml

crates/bench/src/bin/fig6a_jellyfish_fraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
