/root/repo/target/debug/deps/fig5b_longhop-4bee2e67690017b4.d: crates/bench/src/bin/fig5b_longhop.rs

/root/repo/target/debug/deps/fig5b_longhop-4bee2e67690017b4: crates/bench/src/bin/fig5b_longhop.rs

crates/bench/src/bin/fig5b_longhop.rs:
