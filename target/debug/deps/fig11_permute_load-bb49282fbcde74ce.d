/root/repo/target/debug/deps/fig11_permute_load-bb49282fbcde74ce.d: crates/bench/src/bin/fig11_permute_load.rs

/root/repo/target/debug/deps/fig11_permute_load-bb49282fbcde74ce: crates/bench/src/bin/fig11_permute_load.rs

crates/bench/src/bin/fig11_permute_load.rs:
