/root/repo/target/debug/deps/fig6a_jellyfish_fraction-783298274a45ee28.d: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

/root/repo/target/debug/deps/fig6a_jellyfish_fraction-783298274a45ee28: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

crates/bench/src/bin/fig6a_jellyfish_fraction.rs:
