/root/repo/target/debug/deps/dcnsim-e548804c84982d62.d: src/bin/dcnsim.rs

/root/repo/target/debug/deps/dcnsim-e548804c84982d62: src/bin/dcnsim.rs

src/bin/dcnsim.rs:
