/root/repo/target/debug/deps/fig15_large_scale-65a874b4f5d7a2c1.d: crates/bench/src/bin/fig15_large_scale.rs

/root/repo/target/debug/deps/fig15_large_scale-65a874b4f5d7a2c1: crates/bench/src/bin/fig15_large_scale.rs

crates/bench/src/bin/fig15_large_scale.rs:
