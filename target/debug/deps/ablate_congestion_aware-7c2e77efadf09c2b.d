/root/repo/target/debug/deps/ablate_congestion_aware-7c2e77efadf09c2b.d: crates/bench/src/bin/ablate_congestion_aware.rs

/root/repo/target/debug/deps/ablate_congestion_aware-7c2e77efadf09c2b: crates/bench/src/bin/ablate_congestion_aware.rs

crates/bench/src/bin/ablate_congestion_aware.rs:
