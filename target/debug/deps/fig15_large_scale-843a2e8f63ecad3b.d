/root/repo/target/debug/deps/fig15_large_scale-843a2e8f63ecad3b.d: crates/bench/src/bin/fig15_large_scale.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_large_scale-843a2e8f63ecad3b.rmeta: crates/bench/src/bin/fig15_large_scale.rs Cargo.toml

crates/bench/src/bin/fig15_large_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
