/root/repo/target/debug/deps/fig8_flow_size_cdfs-3265800e45802e7c.d: crates/bench/src/bin/fig8_flow_size_cdfs.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_flow_size_cdfs-3265800e45802e7c.rmeta: crates/bench/src/bin/fig8_flow_size_cdfs.rs Cargo.toml

crates/bench/src/bin/fig8_flow_size_cdfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
