/root/repo/target/debug/deps/ablate_congestion_aware-2bd34ffda4dc8422.d: crates/bench/src/bin/ablate_congestion_aware.rs Cargo.toml

/root/repo/target/debug/deps/libablate_congestion_aware-2bd34ffda4dc8422.rmeta: crates/bench/src/bin/ablate_congestion_aware.rs Cargo.toml

crates/bench/src/bin/ablate_congestion_aware.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
