/root/repo/target/debug/deps/ablate_q-bf6874d5dde30940.d: crates/bench/src/bin/ablate_q.rs Cargo.toml

/root/repo/target/debug/deps/libablate_q-bf6874d5dde30940.rmeta: crates/bench/src/bin/ablate_q.rs Cargo.toml

crates/bench/src/bin/ablate_q.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
