/root/repo/target/debug/deps/dcn_routing-9e8c3cc5ed935286.d: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_routing-9e8c3cc5ed935286.rmeta: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs Cargo.toml

crates/routing/src/lib.rs:
crates/routing/src/ecmp.rs:
crates/routing/src/hyb.rs:
crates/routing/src/ksp.rs:
crates/routing/src/kspsel.rs:
crates/routing/src/vlb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
