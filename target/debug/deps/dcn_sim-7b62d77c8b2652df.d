/root/repo/target/debug/deps/dcn_sim-7b62d77c8b2652df.d: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/trace.rs crates/sim/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_sim-7b62d77c8b2652df.rmeta: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/trace.rs crates/sim/src/types.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/channel.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/host.rs:
crates/sim/src/net.rs:
crates/sim/src/stats.rs:
crates/sim/src/switch.rs:
crates/sim/src/trace.rs:
crates/sim/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
