/root/repo/target/debug/deps/engine-c5ce2772f83509d6.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/engine-c5ce2772f83509d6: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
