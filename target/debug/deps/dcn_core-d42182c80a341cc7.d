/root/repo/target/debug/deps/dcn_core-d42182c80a341cc7.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/libdcn_core-d42182c80a341cc7.rlib: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/libdcn_core-d42182c80a341cc7.rmeta: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/dynamicnet.rs:
crates/core/src/experiment.rs:
crates/core/src/flex.rs:
crates/core/src/theory.rs:
