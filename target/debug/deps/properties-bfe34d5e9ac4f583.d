/root/repo/target/debug/deps/properties-bfe34d5e9ac4f583.d: crates/topology/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bfe34d5e9ac4f583.rmeta: crates/topology/tests/properties.rs Cargo.toml

crates/topology/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
