/root/repo/target/debug/deps/dcn_topology-4115e30f7831394d.d: crates/topology/src/lib.rs crates/topology/src/dragonfly.rs crates/topology/src/export.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/jellyfish.rs crates/topology/src/longhop.rs crates/topology/src/metrics.rs crates/topology/src/slimfly.rs crates/topology/src/toy.rs crates/topology/src/xpander.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_topology-4115e30f7831394d.rmeta: crates/topology/src/lib.rs crates/topology/src/dragonfly.rs crates/topology/src/export.rs crates/topology/src/fattree.rs crates/topology/src/graph.rs crates/topology/src/jellyfish.rs crates/topology/src/longhop.rs crates/topology/src/metrics.rs crates/topology/src/slimfly.rs crates/topology/src/toy.rs crates/topology/src/xpander.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/dragonfly.rs:
crates/topology/src/export.rs:
crates/topology/src/fattree.rs:
crates/topology/src/graph.rs:
crates/topology/src/jellyfish.rs:
crates/topology/src/longhop.rs:
crates/topology/src/metrics.rs:
crates/topology/src/slimfly.rs:
crates/topology/src/toy.rs:
crates/topology/src/xpander.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
