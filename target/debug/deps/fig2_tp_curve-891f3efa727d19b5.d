/root/repo/target/debug/deps/fig2_tp_curve-891f3efa727d19b5.d: crates/bench/src/bin/fig2_tp_curve.rs

/root/repo/target/debug/deps/fig2_tp_curve-891f3efa727d19b5: crates/bench/src/bin/fig2_tp_curve.rs

crates/bench/src/bin/fig2_tp_curve.rs:
