/root/repo/target/debug/deps/fig6a_jellyfish_fraction-85b19c4a4addfe56.d: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

/root/repo/target/debug/deps/fig6a_jellyfish_fraction-85b19c4a4addfe56: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

crates/bench/src/bin/fig6a_jellyfish_fraction.rs:
