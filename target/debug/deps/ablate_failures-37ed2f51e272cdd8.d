/root/repo/target/debug/deps/ablate_failures-37ed2f51e272cdd8.d: crates/bench/src/bin/ablate_failures.rs Cargo.toml

/root/repo/target/debug/deps/libablate_failures-37ed2f51e272cdd8.rmeta: crates/bench/src/bin/ablate_failures.rs Cargo.toml

crates/bench/src/bin/ablate_failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
