/root/repo/target/debug/deps/routing-61e2dd6c7789ada7.d: crates/bench/benches/routing.rs

/root/repo/target/debug/deps/routing-61e2dd6c7789ada7: crates/bench/benches/routing.rs

crates/bench/benches/routing.rs:
