/root/repo/target/debug/deps/conjecture24_search-1f1a68177c0ef601.d: crates/bench/src/bin/conjecture24_search.rs

/root/repo/target/debug/deps/conjecture24_search-1f1a68177c0ef601: crates/bench/src/bin/conjecture24_search.rs

crates/bench/src/bin/conjecture24_search.rs:
