/root/repo/target/debug/deps/determinism-31a9e0db99a7d51e.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-31a9e0db99a7d51e.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
