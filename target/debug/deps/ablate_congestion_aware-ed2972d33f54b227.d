/root/repo/target/debug/deps/ablate_congestion_aware-ed2972d33f54b227.d: crates/bench/src/bin/ablate_congestion_aware.rs

/root/repo/target/debug/deps/ablate_congestion_aware-ed2972d33f54b227: crates/bench/src/bin/ablate_congestion_aware.rs

crates/bench/src/bin/ablate_congestion_aware.rs:
