/root/repo/target/debug/deps/fig9_a2a_sweep-635e2b7e6afe72ba.d: crates/bench/src/bin/fig9_a2a_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_a2a_sweep-635e2b7e6afe72ba.rmeta: crates/bench/src/bin/fig9_a2a_sweep.rs Cargo.toml

crates/bench/src/bin/fig9_a2a_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
