/root/repo/target/debug/deps/dcn_workloads-797bf6544b151846.d: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_workloads-797bf6544b151846.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arrivals.rs crates/workloads/src/fluid.rs crates/workloads/src/fsize.rs crates/workloads/src/tm.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/arrivals.rs:
crates/workloads/src/fluid.rs:
crates/workloads/src/fsize.rs:
crates/workloads/src/tm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
