/root/repo/target/debug/deps/fig15_large_scale-fdcb842fe819e527.d: crates/bench/src/bin/fig15_large_scale.rs

/root/repo/target/debug/deps/fig15_large_scale-fdcb842fe819e527: crates/bench/src/bin/fig15_large_scale.rs

crates/bench/src/bin/fig15_large_scale.rs:
