/root/repo/target/debug/deps/dcn_bench-1251339912f808ac.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcn_bench-1251339912f808ac.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
