/root/repo/target/debug/deps/dcn_rng-9bdbcb3e309513ca.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libdcn_rng-9bdbcb3e309513ca.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libdcn_rng-9bdbcb3e309513ca.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
