/root/repo/target/debug/deps/fig4_toy_example-40599357001e8b44.d: crates/bench/src/bin/fig4_toy_example.rs

/root/repo/target/debug/deps/fig4_toy_example-40599357001e8b44: crates/bench/src/bin/fig4_toy_example.rs

crates/bench/src/bin/fig4_toy_example.rs:
