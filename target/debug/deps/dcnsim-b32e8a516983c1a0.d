/root/repo/target/debug/deps/dcnsim-b32e8a516983c1a0.d: src/bin/dcnsim.rs Cargo.toml

/root/repo/target/debug/deps/libdcnsim-b32e8a516983c1a0.rmeta: src/bin/dcnsim.rs Cargo.toml

src/bin/dcnsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
