/root/repo/target/debug/deps/fig13_projector-9eb62a2ecdcdf12b.d: crates/bench/src/bin/fig13_projector.rs

/root/repo/target/debug/deps/fig13_projector-9eb62a2ecdcdf12b: crates/bench/src/bin/fig13_projector.rs

crates/bench/src/bin/fig13_projector.rs:
