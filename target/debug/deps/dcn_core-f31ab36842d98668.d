/root/repo/target/debug/deps/dcn_core-f31ab36842d98668.d: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

/root/repo/target/debug/deps/dcn_core-f31ab36842d98668: crates/core/src/lib.rs crates/core/src/cost.rs crates/core/src/dynamicnet.rs crates/core/src/experiment.rs crates/core/src/flex.rs crates/core/src/theory.rs

crates/core/src/lib.rs:
crates/core/src/cost.rs:
crates/core/src/dynamicnet.rs:
crates/core/src/experiment.rs:
crates/core/src/flex.rs:
crates/core/src/theory.rs:
