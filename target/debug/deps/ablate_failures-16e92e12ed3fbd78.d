/root/repo/target/debug/deps/ablate_failures-16e92e12ed3fbd78.d: crates/bench/src/bin/ablate_failures.rs Cargo.toml

/root/repo/target/debug/deps/libablate_failures-16e92e12ed3fbd78.rmeta: crates/bench/src/bin/ablate_failures.rs Cargo.toml

crates/bench/src/bin/ablate_failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
