/root/repo/target/debug/deps/routing-62eb874478d75341.d: crates/bench/benches/routing.rs Cargo.toml

/root/repo/target/debug/deps/librouting-62eb874478d75341.rmeta: crates/bench/benches/routing.rs Cargo.toml

crates/bench/benches/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
