/root/repo/target/debug/deps/fig9_a2a_sweep-d3a0f33685395a65.d: crates/bench/src/bin/fig9_a2a_sweep.rs

/root/repo/target/debug/deps/fig9_a2a_sweep-d3a0f33685395a65: crates/bench/src/bin/fig9_a2a_sweep.rs

crates/bench/src/bin/fig9_a2a_sweep.rs:
