/root/repo/target/debug/deps/ablate_flowlet-0395fbfbdac27813.d: crates/bench/src/bin/ablate_flowlet.rs

/root/repo/target/debug/deps/ablate_flowlet-0395fbfbdac27813: crates/bench/src/bin/ablate_flowlet.rs

crates/bench/src/bin/ablate_flowlet.rs:
