/root/repo/target/debug/deps/dcn_json-0f091b75a47c650c.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/dcn_json-0f091b75a47c650c: crates/json/src/lib.rs

crates/json/src/lib.rs:
