/root/repo/target/debug/deps/determinism-79996d59b9972bfe.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-79996d59b9972bfe: tests/determinism.rs

tests/determinism.rs:
