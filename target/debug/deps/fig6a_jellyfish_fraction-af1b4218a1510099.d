/root/repo/target/debug/deps/fig6a_jellyfish_fraction-af1b4218a1510099.d: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

/root/repo/target/debug/deps/fig6a_jellyfish_fraction-af1b4218a1510099: crates/bench/src/bin/fig6a_jellyfish_fraction.rs

crates/bench/src/bin/fig6a_jellyfish_fraction.rs:
