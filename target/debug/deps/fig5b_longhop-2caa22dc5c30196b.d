/root/repo/target/debug/deps/fig5b_longhop-2caa22dc5c30196b.d: crates/bench/src/bin/fig5b_longhop.rs

/root/repo/target/debug/deps/fig5b_longhop-2caa22dc5c30196b: crates/bench/src/bin/fig5b_longhop.rs

crates/bench/src/bin/fig5b_longhop.rs:
