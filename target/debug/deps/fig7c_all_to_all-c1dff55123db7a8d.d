/root/repo/target/debug/deps/fig7c_all_to_all-c1dff55123db7a8d.d: crates/bench/src/bin/fig7c_all_to_all.rs

/root/repo/target/debug/deps/fig7c_all_to_all-c1dff55123db7a8d: crates/bench/src/bin/fig7c_all_to_all.rs

crates/bench/src/bin/fig7c_all_to_all.rs:
