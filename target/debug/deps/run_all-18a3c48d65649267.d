/root/repo/target/debug/deps/run_all-18a3c48d65649267.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-18a3c48d65649267: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
