/root/repo/target/debug/deps/dcn_rng-10cc996606286603.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libdcn_rng-10cc996606286603.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
