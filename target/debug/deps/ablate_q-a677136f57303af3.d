/root/repo/target/debug/deps/ablate_q-a677136f57303af3.d: crates/bench/src/bin/ablate_q.rs

/root/repo/target/debug/deps/ablate_q-a677136f57303af3: crates/bench/src/bin/ablate_q.rs

crates/bench/src/bin/ablate_q.rs:
