/root/repo/target/debug/deps/ablate_ecn-eb53310dfaf6e830.d: crates/bench/src/bin/ablate_ecn.rs

/root/repo/target/debug/deps/ablate_ecn-eb53310dfaf6e830: crates/bench/src/bin/ablate_ecn.rs

crates/bench/src/bin/ablate_ecn.rs:
