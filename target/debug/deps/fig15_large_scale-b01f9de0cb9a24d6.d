/root/repo/target/debug/deps/fig15_large_scale-b01f9de0cb9a24d6.d: crates/bench/src/bin/fig15_large_scale.rs

/root/repo/target/debug/deps/fig15_large_scale-b01f9de0cb9a24d6: crates/bench/src/bin/fig15_large_scale.rs

crates/bench/src/bin/fig15_large_scale.rs:
