/root/repo/target/debug/deps/fig1_observation1-2f2d6ad969a5f2cd.d: crates/bench/src/bin/fig1_observation1.rs

/root/repo/target/debug/deps/fig1_observation1-2f2d6ad969a5f2cd: crates/bench/src/bin/fig1_observation1.rs

crates/bench/src/bin/fig1_observation1.rs:
