/root/repo/target/debug/deps/fig6b_jellyfish_scaling-b9c14a6d7e3048c7.d: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

/root/repo/target/debug/deps/fig6b_jellyfish_scaling-b9c14a6d7e3048c7: crates/bench/src/bin/fig6b_jellyfish_scaling.rs

crates/bench/src/bin/fig6b_jellyfish_scaling.rs:
