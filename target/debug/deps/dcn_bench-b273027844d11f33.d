/root/repo/target/debug/deps/dcn_bench-b273027844d11f33.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcn_bench-b273027844d11f33.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcn_bench-b273027844d11f33.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
