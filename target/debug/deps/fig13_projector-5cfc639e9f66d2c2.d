/root/repo/target/debug/deps/fig13_projector-5cfc639e9f66d2c2.d: crates/bench/src/bin/fig13_projector.rs

/root/repo/target/debug/deps/fig13_projector-5cfc639e9f66d2c2: crates/bench/src/bin/fig13_projector.rs

crates/bench/src/bin/fig13_projector.rs:
