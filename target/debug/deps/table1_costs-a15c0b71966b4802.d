/root/repo/target/debug/deps/table1_costs-a15c0b71966b4802.d: crates/bench/src/bin/table1_costs.rs

/root/repo/target/debug/deps/table1_costs-a15c0b71966b4802: crates/bench/src/bin/table1_costs.rs

crates/bench/src/bin/table1_costs.rs:
