/root/repo/target/debug/deps/ablate_ecn-030cc92d26f559a9.d: crates/bench/src/bin/ablate_ecn.rs Cargo.toml

/root/repo/target/debug/deps/libablate_ecn-030cc92d26f559a9.rmeta: crates/bench/src/bin/ablate_ecn.rs Cargo.toml

crates/bench/src/bin/ablate_ecn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
