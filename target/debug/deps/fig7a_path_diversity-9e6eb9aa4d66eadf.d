/root/repo/target/debug/deps/fig7a_path_diversity-9e6eb9aa4d66eadf.d: crates/bench/src/bin/fig7a_path_diversity.rs

/root/repo/target/debug/deps/fig7a_path_diversity-9e6eb9aa4d66eadf: crates/bench/src/bin/fig7a_path_diversity.rs

crates/bench/src/bin/fig7a_path_diversity.rs:
