/root/repo/target/debug/deps/fig10_permute_sweep-c3c900bfb3e27b99.d: crates/bench/src/bin/fig10_permute_sweep.rs

/root/repo/target/debug/deps/fig10_permute_sweep-c3c900bfb3e27b99: crates/bench/src/bin/fig10_permute_sweep.rs

crates/bench/src/bin/fig10_permute_sweep.rs:
