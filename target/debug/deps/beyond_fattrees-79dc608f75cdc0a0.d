/root/repo/target/debug/deps/beyond_fattrees-79dc608f75cdc0a0.d: src/lib.rs

/root/repo/target/debug/deps/libbeyond_fattrees-79dc608f75cdc0a0.rlib: src/lib.rs

/root/repo/target/debug/deps/libbeyond_fattrees-79dc608f75cdc0a0.rmeta: src/lib.rs

src/lib.rs:
