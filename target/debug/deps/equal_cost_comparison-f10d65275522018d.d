/root/repo/target/debug/deps/equal_cost_comparison-f10d65275522018d.d: tests/equal_cost_comparison.rs

/root/repo/target/debug/deps/equal_cost_comparison-f10d65275522018d: tests/equal_cost_comparison.rs

tests/equal_cost_comparison.rs:
