/root/repo/target/debug/deps/dcn_rng-a124ffddba7592e0.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_rng-a124ffddba7592e0.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
