/root/repo/target/debug/deps/dcnsim-d576b18d474d4ff3.d: src/bin/dcnsim.rs

/root/repo/target/debug/deps/dcnsim-d576b18d474d4ff3: src/bin/dcnsim.rs

src/bin/dcnsim.rs:
