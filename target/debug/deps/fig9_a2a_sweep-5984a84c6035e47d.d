/root/repo/target/debug/deps/fig9_a2a_sweep-5984a84c6035e47d.d: crates/bench/src/bin/fig9_a2a_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_a2a_sweep-5984a84c6035e47d.rmeta: crates/bench/src/bin/fig9_a2a_sweep.rs Cargo.toml

crates/bench/src/bin/fig9_a2a_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
