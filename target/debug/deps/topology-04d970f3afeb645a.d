/root/repo/target/debug/deps/topology-04d970f3afeb645a.d: crates/bench/benches/topology.rs Cargo.toml

/root/repo/target/debug/deps/libtopology-04d970f3afeb645a.rmeta: crates/bench/benches/topology.rs Cargo.toml

crates/bench/benches/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
