/root/repo/target/debug/deps/fig5b_longhop-f3318556f4d8d884.d: crates/bench/src/bin/fig5b_longhop.rs Cargo.toml

/root/repo/target/debug/deps/libfig5b_longhop-f3318556f4d8d884.rmeta: crates/bench/src/bin/fig5b_longhop.rs Cargo.toml

crates/bench/src/bin/fig5b_longhop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
