/root/repo/target/debug/deps/equal_cost_comparison-50465aed540961f2.d: tests/equal_cost_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libequal_cost_comparison-50465aed540961f2.rmeta: tests/equal_cost_comparison.rs Cargo.toml

tests/equal_cost_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
