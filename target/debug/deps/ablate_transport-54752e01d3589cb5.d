/root/repo/target/debug/deps/ablate_transport-54752e01d3589cb5.d: crates/bench/src/bin/ablate_transport.rs

/root/repo/target/debug/deps/ablate_transport-54752e01d3589cb5: crates/bench/src/bin/ablate_transport.rs

crates/bench/src/bin/ablate_transport.rs:
