/root/repo/target/debug/deps/dcn_rng-2ca1b84f6fc98b81.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_rng-2ca1b84f6fc98b81.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
