/root/repo/target/debug/deps/dcn_flowsim-9e473576a693cd29.d: crates/flowsim/src/lib.rs

/root/repo/target/debug/deps/libdcn_flowsim-9e473576a693cd29.rlib: crates/flowsim/src/lib.rs

/root/repo/target/debug/deps/libdcn_flowsim-9e473576a693cd29.rmeta: crates/flowsim/src/lib.rs

crates/flowsim/src/lib.rs:
