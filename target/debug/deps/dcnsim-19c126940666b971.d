/root/repo/target/debug/deps/dcnsim-19c126940666b971.d: src/bin/dcnsim.rs

/root/repo/target/debug/deps/dcnsim-19c126940666b971: src/bin/dcnsim.rs

src/bin/dcnsim.rs:
