/root/repo/target/debug/deps/ablate_transport-72e2235dc7b280d5.d: crates/bench/src/bin/ablate_transport.rs

/root/repo/target/debug/deps/ablate_transport-72e2235dc7b280d5: crates/bench/src/bin/ablate_transport.rs

crates/bench/src/bin/ablate_transport.rs:
