/root/repo/target/debug/deps/table1_costs-143bb81ef0df4f7c.d: crates/bench/src/bin/table1_costs.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_costs-143bb81ef0df4f7c.rmeta: crates/bench/src/bin/table1_costs.rs Cargo.toml

crates/bench/src/bin/table1_costs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
