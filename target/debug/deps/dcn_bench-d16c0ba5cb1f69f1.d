/root/repo/target/debug/deps/dcn_bench-d16c0ba5cb1f69f1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_bench-d16c0ba5cb1f69f1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
