/root/repo/target/debug/deps/solvers-87df25eca6b587d0.d: crates/bench/benches/solvers.rs Cargo.toml

/root/repo/target/debug/deps/libsolvers-87df25eca6b587d0.rmeta: crates/bench/benches/solvers.rs Cargo.toml

crates/bench/benches/solvers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
