/root/repo/target/debug/deps/fluid_vs_packet-7c2e70eb93f4d272.d: tests/fluid_vs_packet.rs

/root/repo/target/debug/deps/fluid_vs_packet-7c2e70eb93f4d272: tests/fluid_vs_packet.rs

tests/fluid_vs_packet.rs:
