/root/repo/target/debug/deps/properties-94099dd30e668000.d: crates/workloads/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-94099dd30e668000.rmeta: crates/workloads/tests/properties.rs Cargo.toml

crates/workloads/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
