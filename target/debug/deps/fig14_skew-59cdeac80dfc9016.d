/root/repo/target/debug/deps/fig14_skew-59cdeac80dfc9016.d: crates/bench/src/bin/fig14_skew.rs

/root/repo/target/debug/deps/fig14_skew-59cdeac80dfc9016: crates/bench/src/bin/fig14_skew.rs

crates/bench/src/bin/fig14_skew.rs:
