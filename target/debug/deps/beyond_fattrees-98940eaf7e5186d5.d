/root/repo/target/debug/deps/beyond_fattrees-98940eaf7e5186d5.d: src/lib.rs

/root/repo/target/debug/deps/beyond_fattrees-98940eaf7e5186d5: src/lib.rs

src/lib.rs:
