/root/repo/target/debug/deps/fig13_projector-84e4e12102965121.d: crates/bench/src/bin/fig13_projector.rs

/root/repo/target/debug/deps/fig13_projector-84e4e12102965121: crates/bench/src/bin/fig13_projector.rs

crates/bench/src/bin/fig13_projector.rs:
