/root/repo/target/debug/deps/gk_probe-57f4e5ce6bff91ee.d: crates/bench/src/bin/gk_probe.rs Cargo.toml

/root/repo/target/debug/deps/libgk_probe-57f4e5ce6bff91ee.rmeta: crates/bench/src/bin/gk_probe.rs Cargo.toml

crates/bench/src/bin/gk_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
