/root/repo/target/debug/deps/fig4_toy_example-73da82350f1f6e87.d: crates/bench/src/bin/fig4_toy_example.rs

/root/repo/target/debug/deps/fig4_toy_example-73da82350f1f6e87: crates/bench/src/bin/fig4_toy_example.rs

crates/bench/src/bin/fig4_toy_example.rs:
