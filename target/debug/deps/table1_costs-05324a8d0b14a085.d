/root/repo/target/debug/deps/table1_costs-05324a8d0b14a085.d: crates/bench/src/bin/table1_costs.rs

/root/repo/target/debug/deps/table1_costs-05324a8d0b14a085: crates/bench/src/bin/table1_costs.rs

crates/bench/src/bin/table1_costs.rs:
