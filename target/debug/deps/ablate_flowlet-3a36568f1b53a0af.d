/root/repo/target/debug/deps/ablate_flowlet-3a36568f1b53a0af.d: crates/bench/src/bin/ablate_flowlet.rs

/root/repo/target/debug/deps/ablate_flowlet-3a36568f1b53a0af: crates/bench/src/bin/ablate_flowlet.rs

crates/bench/src/bin/ablate_flowlet.rs:
