/root/repo/target/debug/deps/fig7a_path_diversity-3a96104e78c436d8.d: crates/bench/src/bin/fig7a_path_diversity.rs Cargo.toml

/root/repo/target/debug/deps/libfig7a_path_diversity-3a96104e78c436d8.rmeta: crates/bench/src/bin/fig7a_path_diversity.rs Cargo.toml

crates/bench/src/bin/fig7a_path_diversity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
