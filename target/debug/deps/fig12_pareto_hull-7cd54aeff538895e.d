/root/repo/target/debug/deps/fig12_pareto_hull-7cd54aeff538895e.d: crates/bench/src/bin/fig12_pareto_hull.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_pareto_hull-7cd54aeff538895e.rmeta: crates/bench/src/bin/fig12_pareto_hull.rs Cargo.toml

crates/bench/src/bin/fig12_pareto_hull.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
