/root/repo/target/debug/deps/dcn_routing-9434588024e3fd6c.d: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

/root/repo/target/debug/deps/libdcn_routing-9434588024e3fd6c.rlib: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

/root/repo/target/debug/deps/libdcn_routing-9434588024e3fd6c.rmeta: crates/routing/src/lib.rs crates/routing/src/ecmp.rs crates/routing/src/hyb.rs crates/routing/src/ksp.rs crates/routing/src/kspsel.rs crates/routing/src/vlb.rs

crates/routing/src/lib.rs:
crates/routing/src/ecmp.rs:
crates/routing/src/hyb.rs:
crates/routing/src/ksp.rs:
crates/routing/src/kspsel.rs:
crates/routing/src/vlb.rs:
