/root/repo/target/debug/deps/dcn_bench-28616d38d67ce4d0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dcn_bench-28616d38d67ce4d0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
