/root/repo/target/debug/deps/fig2_tp_curve-d14591ddbabe6720.d: crates/bench/src/bin/fig2_tp_curve.rs

/root/repo/target/debug/deps/fig2_tp_curve-d14591ddbabe6720: crates/bench/src/bin/fig2_tp_curve.rs

crates/bench/src/bin/fig2_tp_curve.rs:
