/root/repo/target/debug/deps/fig12_pareto_hull-9fa5e24e0df846dc.d: crates/bench/src/bin/fig12_pareto_hull.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_pareto_hull-9fa5e24e0df846dc.rmeta: crates/bench/src/bin/fig12_pareto_hull.rs Cargo.toml

crates/bench/src/bin/fig12_pareto_hull.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
