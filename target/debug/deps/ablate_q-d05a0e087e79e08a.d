/root/repo/target/debug/deps/ablate_q-d05a0e087e79e08a.d: crates/bench/src/bin/ablate_q.rs Cargo.toml

/root/repo/target/debug/deps/libablate_q-d05a0e087e79e08a.rmeta: crates/bench/src/bin/ablate_q.rs Cargo.toml

crates/bench/src/bin/ablate_q.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
