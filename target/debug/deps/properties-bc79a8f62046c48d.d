/root/repo/target/debug/deps/properties-bc79a8f62046c48d.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bc79a8f62046c48d.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
