/root/repo/target/debug/deps/ablate_adaptive-1f22ad3d69876633.d: crates/bench/src/bin/ablate_adaptive.rs Cargo.toml

/root/repo/target/debug/deps/libablate_adaptive-1f22ad3d69876633.rmeta: crates/bench/src/bin/ablate_adaptive.rs Cargo.toml

crates/bench/src/bin/ablate_adaptive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
