/root/repo/target/debug/deps/ablate_failures-7f33e576bcce1708.d: crates/bench/src/bin/ablate_failures.rs

/root/repo/target/debug/deps/ablate_failures-7f33e576bcce1708: crates/bench/src/bin/ablate_failures.rs

crates/bench/src/bin/ablate_failures.rs:
