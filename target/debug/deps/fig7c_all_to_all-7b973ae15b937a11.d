/root/repo/target/debug/deps/fig7c_all_to_all-7b973ae15b937a11.d: crates/bench/src/bin/fig7c_all_to_all.rs

/root/repo/target/debug/deps/fig7c_all_to_all-7b973ae15b937a11: crates/bench/src/bin/fig7c_all_to_all.rs

crates/bench/src/bin/fig7c_all_to_all.rs:
