/root/repo/target/debug/deps/gk_probe-ed5fa9d29420b5bd.d: crates/bench/src/bin/gk_probe.rs

/root/repo/target/debug/deps/gk_probe-ed5fa9d29420b5bd: crates/bench/src/bin/gk_probe.rs

crates/bench/src/bin/gk_probe.rs:
