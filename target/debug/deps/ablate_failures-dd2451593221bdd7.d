/root/repo/target/debug/deps/ablate_failures-dd2451593221bdd7.d: crates/bench/src/bin/ablate_failures.rs

/root/repo/target/debug/deps/ablate_failures-dd2451593221bdd7: crates/bench/src/bin/ablate_failures.rs

crates/bench/src/bin/ablate_failures.rs:
