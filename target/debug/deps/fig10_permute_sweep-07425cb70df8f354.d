/root/repo/target/debug/deps/fig10_permute_sweep-07425cb70df8f354.d: crates/bench/src/bin/fig10_permute_sweep.rs

/root/repo/target/debug/deps/fig10_permute_sweep-07425cb70df8f354: crates/bench/src/bin/fig10_permute_sweep.rs

crates/bench/src/bin/fig10_permute_sweep.rs:
