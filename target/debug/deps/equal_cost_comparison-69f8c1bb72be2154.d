/root/repo/target/debug/deps/equal_cost_comparison-69f8c1bb72be2154.d: tests/equal_cost_comparison.rs

/root/repo/target/debug/deps/equal_cost_comparison-69f8c1bb72be2154: tests/equal_cost_comparison.rs

tests/equal_cost_comparison.rs:
