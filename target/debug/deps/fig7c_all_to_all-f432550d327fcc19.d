/root/repo/target/debug/deps/fig7c_all_to_all-f432550d327fcc19.d: crates/bench/src/bin/fig7c_all_to_all.rs Cargo.toml

/root/repo/target/debug/deps/libfig7c_all_to_all-f432550d327fcc19.rmeta: crates/bench/src/bin/fig7c_all_to_all.rs Cargo.toml

crates/bench/src/bin/fig7c_all_to_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
