/root/repo/target/debug/deps/ablate_ecn-e5f3c18432fc1713.d: crates/bench/src/bin/ablate_ecn.rs Cargo.toml

/root/repo/target/debug/deps/libablate_ecn-e5f3c18432fc1713.rmeta: crates/bench/src/bin/ablate_ecn.rs Cargo.toml

crates/bench/src/bin/ablate_ecn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
