/root/repo/target/debug/deps/dcn_flowsim-4a06b47ac1625f82.d: crates/flowsim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdcn_flowsim-4a06b47ac1625f82.rmeta: crates/flowsim/src/lib.rs Cargo.toml

crates/flowsim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
