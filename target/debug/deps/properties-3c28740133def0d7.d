/root/repo/target/debug/deps/properties-3c28740133def0d7.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-3c28740133def0d7.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
