/root/repo/target/debug/deps/gk_probe-e51992b522b5e2c9.d: crates/bench/src/bin/gk_probe.rs

/root/repo/target/debug/deps/gk_probe-e51992b522b5e2c9: crates/bench/src/bin/gk_probe.rs

crates/bench/src/bin/gk_probe.rs:
