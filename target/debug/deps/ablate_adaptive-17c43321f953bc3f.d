/root/repo/target/debug/deps/ablate_adaptive-17c43321f953bc3f.d: crates/bench/src/bin/ablate_adaptive.rs

/root/repo/target/debug/deps/ablate_adaptive-17c43321f953bc3f: crates/bench/src/bin/ablate_adaptive.rs

crates/bench/src/bin/ablate_adaptive.rs:
