/root/repo/target/debug/deps/dcn_bench-5dffcf52c16edd7e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcn_bench-5dffcf52c16edd7e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdcn_bench-5dffcf52c16edd7e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
