/root/repo/target/debug/deps/fig5a_slimfly-824d7895a5346a29.d: crates/bench/src/bin/fig5a_slimfly.rs

/root/repo/target/debug/deps/fig5a_slimfly-824d7895a5346a29: crates/bench/src/bin/fig5a_slimfly.rs

crates/bench/src/bin/fig5a_slimfly.rs:
