/root/repo/target/debug/deps/fig7a_path_diversity-3dcc542f6a1d20c8.d: crates/bench/src/bin/fig7a_path_diversity.rs

/root/repo/target/debug/deps/fig7a_path_diversity-3dcc542f6a1d20c8: crates/bench/src/bin/fig7a_path_diversity.rs

crates/bench/src/bin/fig7a_path_diversity.rs:
