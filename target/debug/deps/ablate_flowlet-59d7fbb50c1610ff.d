/root/repo/target/debug/deps/ablate_flowlet-59d7fbb50c1610ff.d: crates/bench/src/bin/ablate_flowlet.rs

/root/repo/target/debug/deps/ablate_flowlet-59d7fbb50c1610ff: crates/bench/src/bin/ablate_flowlet.rs

crates/bench/src/bin/ablate_flowlet.rs:
