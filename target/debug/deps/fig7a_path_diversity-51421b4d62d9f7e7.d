/root/repo/target/debug/deps/fig7a_path_diversity-51421b4d62d9f7e7.d: crates/bench/src/bin/fig7a_path_diversity.rs

/root/repo/target/debug/deps/fig7a_path_diversity-51421b4d62d9f7e7: crates/bench/src/bin/fig7a_path_diversity.rs

crates/bench/src/bin/fig7a_path_diversity.rs:
