/root/repo/target/debug/deps/dcn_flowsim-1afde9ca010ca1a4.d: crates/flowsim/src/lib.rs

/root/repo/target/debug/deps/dcn_flowsim-1afde9ca010ca1a4: crates/flowsim/src/lib.rs

crates/flowsim/src/lib.rs:
