/root/repo/target/debug/deps/routing-ea6b98f70c2a7a83.d: crates/bench/benches/routing.rs Cargo.toml

/root/repo/target/debug/deps/librouting-ea6b98f70c2a7a83.rmeta: crates/bench/benches/routing.rs Cargo.toml

crates/bench/benches/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
