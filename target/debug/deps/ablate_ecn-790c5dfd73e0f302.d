/root/repo/target/debug/deps/ablate_ecn-790c5dfd73e0f302.d: crates/bench/src/bin/ablate_ecn.rs

/root/repo/target/debug/deps/ablate_ecn-790c5dfd73e0f302: crates/bench/src/bin/ablate_ecn.rs

crates/bench/src/bin/ablate_ecn.rs:
