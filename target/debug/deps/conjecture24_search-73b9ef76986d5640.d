/root/repo/target/debug/deps/conjecture24_search-73b9ef76986d5640.d: crates/bench/src/bin/conjecture24_search.rs

/root/repo/target/debug/deps/conjecture24_search-73b9ef76986d5640: crates/bench/src/bin/conjecture24_search.rs

crates/bench/src/bin/conjecture24_search.rs:
