/root/repo/target/debug/deps/trace_overhead-3469caea986b5183.d: crates/bench/src/bin/trace_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_overhead-3469caea986b5183.rmeta: crates/bench/src/bin/trace_overhead.rs Cargo.toml

crates/bench/src/bin/trace_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
