/root/repo/target/debug/deps/dcn_sim-d53db67a86a8d8af.d: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/trace.rs crates/sim/src/types.rs

/root/repo/target/debug/deps/dcn_sim-d53db67a86a8d8af: crates/sim/src/lib.rs crates/sim/src/channel.rs crates/sim/src/engine.rs crates/sim/src/fault.rs crates/sim/src/host.rs crates/sim/src/net.rs crates/sim/src/stats.rs crates/sim/src/switch.rs crates/sim/src/trace.rs crates/sim/src/types.rs

crates/sim/src/lib.rs:
crates/sim/src/channel.rs:
crates/sim/src/engine.rs:
crates/sim/src/fault.rs:
crates/sim/src/host.rs:
crates/sim/src/net.rs:
crates/sim/src/stats.rs:
crates/sim/src/switch.rs:
crates/sim/src/trace.rs:
crates/sim/src/types.rs:
