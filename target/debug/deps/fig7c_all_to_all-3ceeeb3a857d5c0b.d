/root/repo/target/debug/deps/fig7c_all_to_all-3ceeeb3a857d5c0b.d: crates/bench/src/bin/fig7c_all_to_all.rs

/root/repo/target/debug/deps/fig7c_all_to_all-3ceeeb3a857d5c0b: crates/bench/src/bin/fig7c_all_to_all.rs

crates/bench/src/bin/fig7c_all_to_all.rs:
