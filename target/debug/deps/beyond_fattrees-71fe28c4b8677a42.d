/root/repo/target/debug/deps/beyond_fattrees-71fe28c4b8677a42.d: src/lib.rs

/root/repo/target/debug/deps/beyond_fattrees-71fe28c4b8677a42: src/lib.rs

src/lib.rs:
