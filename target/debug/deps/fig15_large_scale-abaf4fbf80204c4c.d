/root/repo/target/debug/deps/fig15_large_scale-abaf4fbf80204c4c.d: crates/bench/src/bin/fig15_large_scale.rs

/root/repo/target/debug/deps/fig15_large_scale-abaf4fbf80204c4c: crates/bench/src/bin/fig15_large_scale.rs

crates/bench/src/bin/fig15_large_scale.rs:
