/root/repo/target/debug/deps/fig5b_longhop-538fe620e02e261c.d: crates/bench/src/bin/fig5b_longhop.rs

/root/repo/target/debug/deps/fig5b_longhop-538fe620e02e261c: crates/bench/src/bin/fig5b_longhop.rs

crates/bench/src/bin/fig5b_longhop.rs:
