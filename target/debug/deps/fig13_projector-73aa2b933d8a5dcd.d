/root/repo/target/debug/deps/fig13_projector-73aa2b933d8a5dcd.d: crates/bench/src/bin/fig13_projector.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_projector-73aa2b933d8a5dcd.rmeta: crates/bench/src/bin/fig13_projector.rs Cargo.toml

crates/bench/src/bin/fig13_projector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
