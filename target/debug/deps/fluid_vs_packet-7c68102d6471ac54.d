/root/repo/target/debug/deps/fluid_vs_packet-7c68102d6471ac54.d: tests/fluid_vs_packet.rs Cargo.toml

/root/repo/target/debug/deps/libfluid_vs_packet-7c68102d6471ac54.rmeta: tests/fluid_vs_packet.rs Cargo.toml

tests/fluid_vs_packet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
