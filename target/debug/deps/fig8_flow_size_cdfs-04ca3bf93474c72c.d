/root/repo/target/debug/deps/fig8_flow_size_cdfs-04ca3bf93474c72c.d: crates/bench/src/bin/fig8_flow_size_cdfs.rs

/root/repo/target/debug/deps/fig8_flow_size_cdfs-04ca3bf93474c72c: crates/bench/src/bin/fig8_flow_size_cdfs.rs

crates/bench/src/bin/fig8_flow_size_cdfs.rs:
