/root/repo/target/debug/deps/dcnsim-0ad8fef13e5fc8d8.d: src/bin/dcnsim.rs Cargo.toml

/root/repo/target/debug/deps/libdcnsim-0ad8fef13e5fc8d8.rmeta: src/bin/dcnsim.rs Cargo.toml

src/bin/dcnsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
