/root/repo/target/debug/deps/ablate_q-10de67fe7b618761.d: crates/bench/src/bin/ablate_q.rs

/root/repo/target/debug/deps/ablate_q-10de67fe7b618761: crates/bench/src/bin/ablate_q.rs

crates/bench/src/bin/ablate_q.rs:
