/root/repo/target/debug/deps/fig11_permute_load-a5f51614c851a7bd.d: crates/bench/src/bin/fig11_permute_load.rs

/root/repo/target/debug/deps/fig11_permute_load-a5f51614c851a7bd: crates/bench/src/bin/fig11_permute_load.rs

crates/bench/src/bin/fig11_permute_load.rs:
