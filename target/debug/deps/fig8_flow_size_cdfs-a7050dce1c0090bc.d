/root/repo/target/debug/deps/fig8_flow_size_cdfs-a7050dce1c0090bc.d: crates/bench/src/bin/fig8_flow_size_cdfs.rs

/root/repo/target/debug/deps/fig8_flow_size_cdfs-a7050dce1c0090bc: crates/bench/src/bin/fig8_flow_size_cdfs.rs

crates/bench/src/bin/fig8_flow_size_cdfs.rs:
