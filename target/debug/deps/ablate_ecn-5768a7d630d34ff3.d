/root/repo/target/debug/deps/ablate_ecn-5768a7d630d34ff3.d: crates/bench/src/bin/ablate_ecn.rs Cargo.toml

/root/repo/target/debug/deps/libablate_ecn-5768a7d630d34ff3.rmeta: crates/bench/src/bin/ablate_ecn.rs Cargo.toml

crates/bench/src/bin/ablate_ecn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
