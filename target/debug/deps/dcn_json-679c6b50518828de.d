/root/repo/target/debug/deps/dcn_json-679c6b50518828de.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/libdcn_json-679c6b50518828de.rlib: crates/json/src/lib.rs

/root/repo/target/debug/deps/libdcn_json-679c6b50518828de.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
