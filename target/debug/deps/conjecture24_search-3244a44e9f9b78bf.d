/root/repo/target/debug/deps/conjecture24_search-3244a44e9f9b78bf.d: crates/bench/src/bin/conjecture24_search.rs

/root/repo/target/debug/deps/conjecture24_search-3244a44e9f9b78bf: crates/bench/src/bin/conjecture24_search.rs

crates/bench/src/bin/conjecture24_search.rs:
