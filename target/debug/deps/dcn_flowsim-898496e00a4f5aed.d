/root/repo/target/debug/deps/dcn_flowsim-898496e00a4f5aed.d: crates/flowsim/src/lib.rs

/root/repo/target/debug/deps/libdcn_flowsim-898496e00a4f5aed.rlib: crates/flowsim/src/lib.rs

/root/repo/target/debug/deps/libdcn_flowsim-898496e00a4f5aed.rmeta: crates/flowsim/src/lib.rs

crates/flowsim/src/lib.rs:
